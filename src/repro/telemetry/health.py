"""Declarative SLO rules evaluated against a metrics snapshot.

A :class:`SLORule` is a named boolean expression over the metrics in a
``repro-metrics/v1`` snapshot (:meth:`MetricsRegistry.snapshot`)::

    SLORule("queue_wait_p95",
            "p95(service_queue_wait_seconds) < 1.0",
            warn="p95(service_queue_wait_seconds) < 0.25")

Expressions are ordinary Python comparison syntax, parsed with
:mod:`ast` and evaluated against a small whitelist — there is no
``eval``. Supported forms:

* comparisons ``< <= > >=`` with arithmetic ``+ - * /`` and numeric
  literals on either side;
* a bare metric name (``service_queue_depth``) — the value of a
  counter (summed over label sets) or gauge;
* ``value(name, label='x')`` — counter/gauge value filtered by
  labels; a counter whose metric exists but has no matching series
  counts as ``0`` (it was simply never incremented);
* ``p50(name, ...)`` / ``p95`` / ``p99`` / ``quantile(name, q, ...)``
  — histogram quantiles from the reservoir when present, otherwise
  interpolated from bucket counts;
* ``mean(name, ...)``, ``count(name, ...)``, ``total(name, ...)`` —
  histogram mean / observation count / sum, label-filtered.

:func:`evaluate_rules` folds rule results into a :class:`HealthReport`
with overall status ``ok`` / ``warn`` / ``fail`` and a per-rule reason
string. A rule whose metric was never collected (or whose ratio is
0/0) degrades to ``warn`` by default rather than failing: an SLO over
a subsystem that did not run is unknown, not violated.
"""

from __future__ import annotations

import ast
import json
import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from . import flight as _flight
from .metrics import quantile as _reservoir_quantile

_STATUS_ORDER = {"ok": 0, "warn": 1, "fail": 2}

_COMPARE_OPS = {
    ast.Lt: ("<", lambda a, b: a < b),
    ast.LtE: ("<=", lambda a, b: a <= b),
    ast.Gt: (">", lambda a, b: a > b),
    ast.GtE: (">=", lambda a, b: a >= b),
}

_BINARY_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
}


class SLOExpressionError(ValueError):
    """An expression does not fit the supported rule grammar."""


class _MetricUnavailable(Exception):
    """A referenced metric was never collected (or is 0/0)."""


@dataclass(frozen=True)
class SLORule:
    """One named service-level objective.

    ``expr`` failing makes the rule ``fail``; otherwise ``warn`` (the
    early-warning threshold) failing makes it ``warn``; otherwise
    ``ok``.
    """

    name: str
    expr: str
    warn: Optional[str] = None
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"name": self.name, "expr": self.expr}
        if self.warn:
            entry["warn"] = self.warn
        if self.description:
            entry["description"] = self.description
        return entry


@dataclass
class RuleResult:
    """Outcome of one rule against one snapshot."""

    rule: str
    status: str
    reason: str
    expr: str


@dataclass
class HealthReport:
    """Aggregated rule outcomes; overall status is the worst rule."""

    results: List[RuleResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        worst = "ok"
        for result in self.results:
            if _STATUS_ORDER[result.status] > _STATUS_ORDER[worst]:
                worst = result.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def failures(self) -> List[RuleResult]:
        return [r for r in self.results if r.status == "fail"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "rules": [
                {"rule": r.rule, "status": r.status,
                 "reason": r.reason, "expr": r.expr}
                for r in self.results
            ],
        }

    def render(self) -> str:
        lines = [f"health: {self.status.upper()}"]
        width = max((len(r.rule) for r in self.results), default=0)
        for result in self.results:
            lines.append(
                f"  {result.status:<4}  "
                f"{result.rule.ljust(width)}  {result.reason}"
            )
        if not self.results:
            lines.append("  (no rules evaluated)")
        return "\n".join(lines)


#: Default ruleset for the serving layer — the signals ISSUE 6 names.
#: Thresholds are deliberately loose: they catch pathology (stalled
#: queue, cold cache, systematic timeouts), not tuning regressions.
DEFAULT_SLO_RULES: Tuple[SLORule, ...] = (
    SLORule(
        "queue_wait_p95",
        "p95(service_queue_wait_seconds) < 5.0",
        warn="p95(service_queue_wait_seconds) < 1.0",
        description="jobs should not sit in the queue",
    ),
    SLORule(
        "cache_hit_ratio",
        "value(service_cache_events_total, event='hit') / "
        "(value(service_cache_events_total, event='hit') + "
        "value(service_cache_events_total, event='miss')) >= 0.1",
        warn="value(service_cache_events_total, event='hit') / "
             "(value(service_cache_events_total, event='hit') + "
             "value(service_cache_events_total, event='miss')) >= 0.25",
        description="repeat submissions should be served from cache",
    ),
    SLORule(
        "timeout_rate",
        "value(service_jobs_total, status='timeout') / "
        "value(service_jobs_total, status='submitted') <= 0.05",
        description="deadline reaping should be exceptional",
    ),
    SLORule(
        "failure_rate",
        "value(service_jobs_total, status='failed') / "
        "value(service_jobs_total, status='submitted') <= 0.01",
        description="worker crashes should be exceptional",
    ),
)


# ----------------------------------------------------------------------
# Metric lookup over a snapshot dict
# ----------------------------------------------------------------------
def _matching_series(entry: Mapping[str, Any],
                     labels: Mapping[str, str]) -> List[Mapping[str, Any]]:
    matches = []
    for series in entry.get("series", []):
        have = series.get("labels", {})
        if all(have.get(key) == value for key, value in labels.items()):
            matches.append(series)
    return matches


class _SnapshotLookup:
    """Name/label resolution against one ``repro-metrics/v1`` dict."""

    def __init__(self, snapshot: Mapping[str, Any]):
        self.counters = snapshot.get("counters") or {}
        self.gauges = snapshot.get("gauges") or {}
        self.histograms = snapshot.get("histograms") or {}

    def scalar(self, name: str, labels: Mapping[str, str]) -> float:
        if name in self.counters:
            series = _matching_series(self.counters[name], labels)
            # A counter that exists but has no series for this label
            # set was never incremented there: the value is 0.
            return float(sum(s.get("value", 0.0) for s in series))
        if name in self.gauges:
            series = _matching_series(self.gauges[name], labels)
            if not series:
                raise _MetricUnavailable(
                    f"gauge {name!r} has no series matching "
                    f"{dict(labels)}"
                )
            # Multiple gauge series without a disambiguating filter:
            # report the max (peak semantics; summing gauges is wrong).
            return float(max(s.get("value", 0.0) for s in series))
        raise _MetricUnavailable(f"metric {name!r} was not collected")

    def _histogram_series(self, name: str, labels: Mapping[str, str]
                          ) -> Tuple[Mapping[str, Any],
                                     List[Mapping[str, Any]]]:
        entry = self.histograms.get(name)
        if entry is None:
            raise _MetricUnavailable(
                f"histogram {name!r} was not collected")
        series = _matching_series(entry, labels)
        if not any(s.get("count") for s in series):
            raise _MetricUnavailable(
                f"histogram {name!r} has no observations matching "
                f"{dict(labels)}"
            )
        return entry, series

    def hist_count(self, name: str, labels: Mapping[str, str]) -> float:
        _, series = self._histogram_series(name, labels)
        return float(sum(s.get("count", 0) for s in series))

    def hist_sum(self, name: str, labels: Mapping[str, str]) -> float:
        _, series = self._histogram_series(name, labels)
        return float(sum(s.get("sum", 0.0) for s in series))

    def hist_mean(self, name: str, labels: Mapping[str, str]) -> float:
        _, series = self._histogram_series(name, labels)
        count = sum(s.get("count", 0) for s in series)
        total = sum(s.get("sum", 0.0) for s in series)
        return total / count

    def hist_quantile(self, name: str, q: float,
                      labels: Mapping[str, str]) -> float:
        entry, series = self._histogram_series(name, labels)
        merged: List[float] = []
        for one in series:
            merged.extend(one.get("reservoir") or [])
        if merged:
            value = _reservoir_quantile(sorted(merged), q)
            if value is not None:
                return value
        return _bucket_quantile(entry, series, q)


def _bucket_quantile(entry: Mapping[str, Any],
                     series: Sequence[Mapping[str, Any]],
                     q: float) -> float:
    """Quantile interpolated from merged bucket counts.

    Fallback for snapshots without reservoirs (sampler JSONL lines):
    linear interpolation within the bucket where the cumulative count
    crosses ``q``. Overflow-bucket hits clamp to the last bound.
    """
    bounds = [float(b) for b in entry.get("buckets", [])]
    merged = [0] * (len(bounds) + 1)
    for one in series:
        counts = one.get("bucket_counts") or []
        if len(counts) == len(merged):
            for index, value in enumerate(counts):
                merged[index] += int(value)
    total = sum(merged)
    if total == 0 or not bounds:
        raise _MetricUnavailable("histogram has no bucket data")
    target = q * total
    cumulative = 0
    for index, count in enumerate(merged):
        previous = cumulative
        cumulative += count
        if cumulative >= target and count:
            if index >= len(bounds):
                return bounds[-1]
            low = bounds[index - 1] if index else 0.0
            high = bounds[index]
            fraction = (target - previous) / count
            return low + (high - low) * min(max(fraction, 0.0), 1.0)
    return bounds[-1]


# ----------------------------------------------------------------------
# Expression evaluation (ast whitelist, no eval)
# ----------------------------------------------------------------------
def _evaluate_expression(expr: str, lookup: _SnapshotLookup
                         ) -> Tuple[bool, str]:
    """Evaluate one rule expression; returns (holds, reason text)."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as error:
        raise SLOExpressionError(
            f"cannot parse SLO expression {expr!r}: {error}"
        ) from error
    body = tree.body
    if (not isinstance(body, ast.Compare)
            or len(body.ops) != 1 or len(body.comparators) != 1):
        raise SLOExpressionError(
            f"SLO expression must be a single comparison: {expr!r}"
        )
    op_type = type(body.ops[0])
    if op_type not in _COMPARE_OPS:
        raise SLOExpressionError(
            f"unsupported comparison operator in {expr!r}"
        )
    symbol, compare = _COMPARE_OPS[op_type]
    left = _evaluate_numeric(body.left, lookup, expr)
    right = _evaluate_numeric(body.comparators[0], lookup, expr)
    holds = bool(compare(left, right))
    reason = (f"{_format_number(left)} {symbol} "
              f"{_format_number(right)}")
    return holds, reason


def _evaluate_numeric(node: ast.AST, lookup: _SnapshotLookup,
                      expr: str) -> float:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)):
            raise SLOExpressionError(
                f"non-numeric literal {node.value!r} in {expr!r}"
            )
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_evaluate_numeric(node.operand, lookup, expr)
    if isinstance(node, ast.BinOp):
        op = _BINARY_OPS.get(type(node.op))
        if op is None:
            raise SLOExpressionError(
                f"unsupported arithmetic operator in {expr!r}"
            )
        left = _evaluate_numeric(node.left, lookup, expr)
        right = _evaluate_numeric(node.right, lookup, expr)
        try:
            return op(left, right)
        except ZeroDivisionError:
            raise _MetricUnavailable(
                f"division by zero evaluating {expr!r}"
            ) from None
    if isinstance(node, ast.Name):
        return lookup.scalar(node.id, {})
    if isinstance(node, ast.Call):
        return _evaluate_call(node, lookup, expr)
    raise SLOExpressionError(
        f"unsupported syntax {ast.dump(node)} in {expr!r}"
    )


def _call_target(node: ast.Call, expr: str
                 ) -> Tuple[str, Dict[str, str], List[float]]:
    if not node.args:
        raise SLOExpressionError(
            f"metric function needs a metric name argument: {expr!r}"
        )
    first = node.args[0]
    if isinstance(first, ast.Name):
        name = first.id
    elif isinstance(first, ast.Constant) and isinstance(first.value, str):
        name = first.value
    else:
        raise SLOExpressionError(
            f"first argument must be a metric name: {expr!r}"
        )
    extra: List[float] = []
    for arg in node.args[1:]:
        if (isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float))
                and not isinstance(arg.value, bool)):
            extra.append(float(arg.value))
        else:
            raise SLOExpressionError(
                f"extra positional arguments must be numeric: {expr!r}"
            )
    labels: Dict[str, str] = {}
    for keyword in node.keywords:
        if keyword.arg is None:
            raise SLOExpressionError(f"**kwargs not supported: {expr!r}")
        value = keyword.value
        if isinstance(value, ast.Constant):
            labels[keyword.arg] = str(value.value)
        else:
            raise SLOExpressionError(
                f"label filters must be literals: {expr!r}"
            )
    return name, labels, extra


def _evaluate_call(node: ast.Call, lookup: _SnapshotLookup,
                   expr: str) -> float:
    if not isinstance(node.func, ast.Name):
        raise SLOExpressionError(f"unsupported call in {expr!r}")
    func = node.func.id
    name, labels, extra = _call_target(node, expr)
    if func == "value":
        return lookup.scalar(name, labels)
    if func in ("p50", "p95", "p99"):
        return lookup.hist_quantile(name, int(func[1:]) / 100.0, labels)
    if func == "quantile":
        if len(extra) != 1 or not 0.0 <= extra[0] <= 1.0:
            raise SLOExpressionError(
                f"quantile(name, q) needs q in [0, 1]: {expr!r}"
            )
        return lookup.hist_quantile(name, extra[0], labels)
    if func == "mean":
        return lookup.hist_mean(name, labels)
    if func == "count":
        return lookup.hist_count(name, labels)
    if func == "total":
        return lookup.hist_sum(name, labels)
    raise SLOExpressionError(
        f"unknown metric function {func!r} in {expr!r} "
        "(expected value/p50/p95/p99/quantile/mean/count/total)"
    )


def _format_number(value: float) -> str:
    if not math.isfinite(value):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) < 1e-3 or abs(value) >= 1e6:
        return f"{value:.3g}"
    return f"{value:.4g}".rstrip("0").rstrip(".") or "0"


# ----------------------------------------------------------------------
# Rule evaluation
# ----------------------------------------------------------------------
def evaluate_rule(rule: SLORule, snapshot: Mapping[str, Any],
                  on_missing: str = "warn") -> RuleResult:
    """Evaluate one rule; missing metrics degrade to ``on_missing``."""
    if on_missing not in ("ok", "warn", "fail"):
        raise ValueError("on_missing must be ok/warn/fail")
    lookup = _SnapshotLookup(snapshot)
    try:
        holds, reason = _evaluate_expression(rule.expr, lookup)
    except _MetricUnavailable as unavailable:
        return RuleResult(rule.name, on_missing,
                          f"not evaluated: {unavailable}", rule.expr)
    if not holds:
        return RuleResult(rule.name, "fail",
                          f"violated: {reason}", rule.expr)
    if rule.warn:
        try:
            warn_holds, warn_reason = _evaluate_expression(
                rule.warn, lookup)
        except _MetricUnavailable:
            warn_holds, warn_reason = True, ""
        if not warn_holds:
            return RuleResult(
                rule.name, "warn",
                f"ok but past warning threshold: {warn_reason}",
                rule.warn,
            )
    return RuleResult(rule.name, "ok", reason, rule.expr)


def evaluate_rules(rules: Iterable[SLORule],
                   snapshot: Mapping[str, Any],
                   on_missing: str = "warn") -> HealthReport:
    """Evaluate a ruleset into a :class:`HealthReport`.

    When the flight recorder is enabled and the report fails, a
    ``repro-flight/v1`` capsule is dumped for the breach (see
    :meth:`repro.telemetry.flight.FlightRecorder.on_slo_breach`).
    """
    report = HealthReport()
    for rule in rules:
        report.results.append(evaluate_rule(rule, snapshot,
                                            on_missing=on_missing))
    recorder = _flight.get_flight_recorder()
    if recorder is not None and report.status == "fail":
        recorder.on_slo_breach(report)
    return report


def load_rules(path: str) -> List[SLORule]:
    """Load rules from a JSON file: a list of rule objects
    (``{"name": ..., "expr": ..., "warn"?: ..., "description"?: ...}``)
    or ``{"rules": [...]}``."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, Mapping):
        document = document.get("rules", [])
    if not isinstance(document, list):
        raise ValueError(f"{path}: expected a list of SLO rules")
    rules = []
    for index, entry in enumerate(document):
        if not isinstance(entry, Mapping) or "name" not in entry \
                or "expr" not in entry:
            raise ValueError(
                f"{path}: rules[{index}] needs 'name' and 'expr'"
            )
        rules.append(SLORule(
            name=str(entry["name"]),
            expr=str(entry["expr"]),
            warn=str(entry["warn"]) if entry.get("warn") else None,
            description=str(entry.get("description", "")),
        ))
    return rules
