"""In-process metrics collection: spans, counters, gauges, series.

The :class:`Collector` is a thread-safe registry of four metric kinds:

* **spans** — context-manager timers keyed by a ``parent/child`` path.
  Nesting is tracked per thread, so a span opened inside another span
  aggregates under the combined path (``experiment.E8/annealing.sa.solve``).
  Per-path statistics (count, total, min, max) are aggregated in place,
  which bounds memory no matter how many times a span fires.
* **counters** — monotonically increasing totals (gate applications,
  annealing sweeps, circuit evaluations, ...).
* **gauges** — last-written values (statevector bytes, problem size).
* **series** — bounded append-only value lists (best-energy
  trajectories, loss curves).

Everything exports to a plain dict (:meth:`Collector.snapshot`), JSON,
and JSONL; :mod:`repro.telemetry.report` renders the text report.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from . import trace as _trace

#: Per-series cap; trajectories past this length drop new points and
#: bump the ``truncated`` count so exports stay bounded.
MAX_SERIES_POINTS = 10_000


@dataclass
class SpanStats:
    """Aggregated timing statistics for one span path."""

    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total_seconds += duration
        if duration < self.min_seconds:
            self.min_seconds = duration
        if duration > self.max_seconds:
            self.max_seconds = duration

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "min_seconds": self.min_seconds if self.count else 0.0,
            "max_seconds": self.max_seconds,
        }


class _SpanHandle:
    """Context manager for one span activation.

    Entering pushes the span's full path onto the calling thread's
    stack (establishing parentage for spans opened inside), exiting
    records the elapsed ``time.perf_counter`` duration. When the event
    tracer is active the activation is mirrored as a begin/end event
    pair, so every collector span lands on the timeline for free.
    """

    __slots__ = ("_collector", "name", "path", "_start", "_tracer")

    def __init__(self, collector: "Collector", name: str):
        self._collector = collector
        self.name = name
        self.path = name
        self._start = 0.0
        self._tracer = None

    def __enter__(self) -> "_SpanHandle":
        stack = self._collector._span_stack()
        parent = stack[-1] if stack else ""
        self.path = f"{parent}/{self.name}" if parent else self.name
        stack.append(self.path)
        # Pin the tracer for the span's lifetime so a disable between
        # enter and exit cannot produce an unmatched begin event.
        self._tracer = _trace.get_tracer()
        if self._tracer is not None:
            self._tracer.begin(self.name, category="span",
                               args={"path": self.path})
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._collector._span_stack()
        if stack and stack[-1] == self.path:
            stack.pop()
        if self._tracer is not None:
            self._tracer.end(self.name, category="span")
            self._tracer = None
        self._collector._observe_span(self.path, duration)
        return False


class Collector:
    """Thread-safe in-process metrics registry."""

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._series: Dict[str, List[float]] = {}
        self._series_truncated: Dict[str, int] = {}
        self.created_at = time.time()

    # -- span machinery -------------------------------------------------
    def _span_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _observe_span(self, path: str, duration: float) -> None:
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
            stats.observe(duration)

    def span(self, name: str) -> _SpanHandle:
        """Timer context manager; nests under the current thread's span."""
        return _SpanHandle(self, name)

    def current_span_path(self) -> Optional[str]:
        """Path of the innermost open span on this thread, if any."""
        stack = self._span_stack()
        return stack[-1] if stack else None

    # -- scalar metrics --------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to a named counter (creates it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to its latest value."""
        with self._lock:
            self._gauges[name] = value

    def record(self, name: str, value: float) -> None:
        """Append one point to a named series (bounded)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = []
            if len(series) < MAX_SERIES_POINTS:
                series.append(float(value))
            else:
                self._series_truncated[name] = (
                    self._series_truncated.get(name, 0) + 1
                )

    # -- cross-process merge ---------------------------------------------
    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a child collector's :meth:`snapshot` into this one.

        The solve service runs jobs in worker processes, each with a
        fresh collector; the parent merges the shipped-back snapshots
        so one report covers the whole fleet. Counters and span stats
        add, series append (still bounded), gauges last-write-wins.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        spans = snapshot.get("spans", {})
        series = snapshot.get("series", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in gauges.items():
                self._gauges[name] = value
            for path, stats in spans.items():
                mine = self._spans.get(path)
                if mine is None:
                    mine = self._spans[path] = SpanStats()
                mine.count += int(stats.get("count", 0))
                mine.total_seconds += float(stats.get("total_seconds", 0.0))
                if stats.get("count"):
                    mine.min_seconds = min(mine.min_seconds,
                                           float(stats["min_seconds"]))
                    mine.max_seconds = max(mine.max_seconds,
                                           float(stats["max_seconds"]))
            for name, payload in series.items():
                mine = self._series.get(name)
                if mine is None:
                    mine = self._series[name] = []
                truncated = int(payload.get("truncated", 0))
                for value in payload.get("values", []):
                    if len(mine) < MAX_SERIES_POINTS:
                        mine.append(float(value))
                    else:
                        truncated += 1
                if truncated:
                    self._series_truncated[name] = (
                        self._series_truncated.get(name, 0) + truncated
                    )

    # -- export ----------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, float]:
        """Copy of the counter totals (for later delta computation)."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self, counters_since: Optional[Mapping[str, float]] = None
                 ) -> Dict[str, Any]:
        """Plain-dict view of everything collected so far.

        ``counters_since`` (a prior :meth:`counters_snapshot`) turns the
        counters section into deltas, so callers can scope totals to one
        experiment while the collector keeps running.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            spans = {path: stats.to_dict()
                     for path, stats in self._spans.items()}
            series = {
                name: {
                    "values": list(values),
                    "truncated": self._series_truncated.get(name, 0),
                }
                for name, values in self._series.items()
            }
        if counters_since is not None:
            counters = {
                name: total - counters_since.get(name, 0)
                for name, total in counters.items()
                if total != counters_since.get(name, 0)
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "spans": spans,
            "series": series,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_jsonl(self) -> str:
        """The snapshot as JSON lines, one metric per line."""
        snap = self.snapshot()
        lines = []
        for name, value in sorted(snap["counters"].items()):
            lines.append(json.dumps(
                {"type": "counter", "name": name, "value": value}
            ))
        for name, value in sorted(snap["gauges"].items()):
            lines.append(json.dumps(
                {"type": "gauge", "name": name, "value": value}
            ))
        for path, stats in sorted(snap["spans"].items()):
            lines.append(json.dumps(
                {"type": "span", "path": path, **stats}
            ))
        for name, series in sorted(snap["series"].items()):
            lines.append(json.dumps(
                {"type": "series", "name": name, **series}
            ))
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric; open span nesting is left untouched."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._spans.clear()
            self._series.clear()
            self._series_truncated.clear()
