"""Uniform per-iteration convergence rows for every solver.

Annealing stalls, QAOA plateaus and tabu cycling are invisible in
aggregate statistics — they only show up in *per-iteration* traces
(Du et al., arXiv:2502.01146). :class:`ProgressTrace` is the one hook
all six registered solvers (sa / sqa / tabu / pt / qaoa / exact) write
through, so every backend emits rows with the same five fields:

``iteration``
    0-based sweep / move / evaluation index.
``best_energy``
    Best energy seen up to and including this iteration.
``current_energy``
    Energy of the current configuration (minimum across reads /
    replicas for population solvers; ``None`` when undefined).
``acceptance_rate``
    Fraction of proposed moves accepted this iteration (``None`` for
    solvers without a Metropolis accept step).
``schedule_value``
    The annealing-schedule knob at this iteration — inverse
    temperature (SA), transverse field (SQA), tabu tenure, coldest
    beta (PT); ``None`` when the solver has no schedule.

Rows are bounded (:data:`MAX_PROGRESS_ROWS`); past the cap new rows
are dropped and counted, so a million-sweep anneal cannot blow up
memory. When event tracing is active each row is mirrored as an
instant event on the timeline (category ``convergence``), which lines
solver convergence up against the spans that produced it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from . import trace

#: Per-trace row cap; further rows are dropped and counted.
MAX_PROGRESS_ROWS = 10_000

#: The uniform row schema every solver emits.
PROGRESS_FIELDS = ("iteration", "best_energy", "current_energy",
                   "acceptance_rate", "schedule_value")


class ProgressTrace:
    """Bounded recorder of uniform per-iteration convergence rows.

    Parameters
    ----------
    label:
        Short tag (usually the solver registry name) used to name the
        mirrored trace events.
    max_rows:
        Row cap; appends past it are dropped and counted in
        :attr:`truncated`.
    """

    def __init__(self, label: str = "solver",
                 max_rows: int = MAX_PROGRESS_ROWS):
        if max_rows < 1:
            raise ValueError("max_rows must be positive")
        self.label = label
        self.max_rows = max_rows
        self._rows: List[Dict[str, Any]] = []
        self.truncated = 0

    def record(self, iteration: int, best_energy: float,
               current_energy: Optional[float] = None,
               acceptance_rate: Optional[float] = None,
               schedule_value: Optional[float] = None) -> None:
        """Append one uniform iteration row (bounded)."""
        if len(self._rows) >= self.max_rows:
            self.truncated += 1
            return
        row: Dict[str, Any] = {
            "iteration": int(iteration),
            "best_energy": float(best_energy),
            "current_energy": (None if current_energy is None
                               else float(current_energy)),
            "acceptance_rate": (None if acceptance_rate is None
                                else float(acceptance_rate)),
            "schedule_value": (None if schedule_value is None
                               else float(schedule_value)),
        }
        self._rows.append(row)
        tracer = trace.get_tracer()
        if tracer is not None:
            tracer.instant(f"convergence.{self.label}",
                           category="convergence", args=row)

    def rows(self) -> List[Dict[str, Any]]:
        """Copies of the recorded rows, in iteration order."""
        return [dict(row) for row in self._rows]

    def note_truncation(self) -> int:
        """Mirror the dropped-row count onto the telemetry counters.

        Truncation used to be recorded only on the trace object itself,
        where nothing downstream looked at it; callers that consume a
        finished trace (dispatch, the service workers) call this so the
        loss shows up as ``progress.truncated_rows`` in the collector —
        and therefore in ``render_report`` — instead of vanishing.
        Returns the number of rows dropped (0 when nothing was lost).
        """
        if self.truncated:
            from . import count  # deferred: this module loads first

            count("progress.truncated_rows", self.truncated)
        return self.truncated

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return True

    @property
    def best_energy(self) -> Optional[float]:
        """Best energy over all recorded rows, or None when empty."""
        if not self._rows:
            return None
        return min(row["best_energy"] for row in self._rows)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "rows": self.rows(),
            "truncated": self.truncated,
        }
