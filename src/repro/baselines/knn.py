"""k-nearest-neighbour classifier (brute force)."""

from __future__ import annotations

import numpy as np


class KNNClassifier:
    """Majority vote over the k nearest training points (Euclidean)."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = int(k)
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        if self.k > X.shape[0]:
            raise ValueError("k exceeds number of training points")
        self._X = X
        self._y = y
        self.classes_ = np.unique(y)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        sq = ((X[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
        nearest = np.argsort(sq, axis=1)[:, : self.k]
        predictions = np.empty(X.shape[0], dtype=self._y.dtype)
        for row, neighbours in enumerate(nearest):
            labels, counts = np.unique(self._y[neighbours],
                                       return_counts=True)
            predictions[row] = labels[counts.argmax()]
        return predictions

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())
