"""Logistic regression trained by full-batch gradient descent."""

from __future__ import annotations


import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary logistic regression with optional L2 regularization."""

    def __init__(self, learning_rate: float = 0.5, max_iter: int = 500,
                 l2: float = 0.0, tol: float = 1e-6):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("logistic regression is binary here")
        targets = (y == self.classes_[1]).astype(float)

        n, d = X.shape
        weights = np.zeros(d)
        bias = 0.0
        previous_loss = np.inf
        for _ in range(self.max_iter):
            probabilities = _sigmoid(X @ weights + bias)
            error = probabilities - targets
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
            loss = self._loss(probabilities, targets, weights)
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.coef_ = weights
        self.intercept_ = bias
        self._fitted = True
        return self

    def _loss(self, probabilities: np.ndarray, targets: np.ndarray,
              weights: np.ndarray) -> float:
        eps = 1e-12
        ce = -(targets * np.log(probabilities + eps)
               + (1 - targets) * np.log(1 - probabilities + eps)).mean()
        return float(ce + 0.5 * self.l2 * (weights ** 2).sum())

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive (second) class per row."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return _sigmoid(X @ self.coef_ + self.intercept_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return np.where(probabilities >= 0.5, self.classes_[1],
                        self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())
