"""Support vector machine trained with simplified SMO.

A from-scratch C-SVM (Platt's sequential minimal optimization in the
simplified variant) supporting callable kernels and precomputed Gram
matrices. The precomputed path is what the quantum-kernel classifier
in :mod:`repro.qml.kernels` uses.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .kernels import KernelFunction, rbf_kernel


class SVM:
    """Binary C-SVM classifier.

    Parameters
    ----------
    kernel:
        ``"precomputed"``, a :data:`KernelFunction`, or one of
        ``"linear"`` / ``"rbf"`` (rbf uses ``gamma``).
    C:
        Soft-margin penalty.
    tol:
        KKT violation tolerance for the SMO loop.
    max_passes:
        Number of consecutive full passes without any alpha update
        before declaring convergence.
    """

    def __init__(self, kernel: Union[str, KernelFunction] = "rbf",
                 C: float = 1.0, gamma: float = 1.0, tol: float = 1e-3,
                 max_passes: int = 5, max_iter: int = 10_000,
                 seed: Optional[int] = 0):
        if C <= 0:
            raise ValueError("C must be positive")
        self.kernel = kernel
        self.C = float(C)
        self.gamma = float(gamma)
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    # ------------------------------------------------------------------
    def _gram(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.kernel == "precomputed":
            raise RuntimeError("internal: precomputed path bypasses _gram")
        if callable(self.kernel):
            return np.asarray(self.kernel(x, y), dtype=float)
        if self.kernel == "linear":
            return x @ y.T
        if self.kernel == "rbf":
            return rbf_kernel(x, y, gamma=self.gamma)
        raise KeyError(f"unknown kernel {self.kernel!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVM":
        """Train on features (or a square Gram matrix if precomputed).

        Labels must be binary; they are mapped internally to -1/+1.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("SVM is binary; got "
                             f"{self.classes_.size} classes")
        signs = np.where(y == self.classes_[1], 1.0, -1.0)

        if self.kernel == "precomputed":
            if X.shape[0] != X.shape[1]:
                raise ValueError("precomputed kernel must be square")
            gram = X
            self._train_X = None
        else:
            gram = self._gram(X, X)
            self._train_X = X

        n = y.size
        alphas = np.zeros(n)
        b = 0.0
        passes = 0
        iteration = 0
        while passes < self.max_passes and iteration < self.max_iter:
            changed = 0
            for i in range(n):
                error_i = (alphas * signs) @ gram[:, i] + b - signs[i]
                if ((signs[i] * error_i < -self.tol and alphas[i] < self.C)
                        or (signs[i] * error_i > self.tol and alphas[i] > 0)):
                    j = int(self._rng.integers(n - 1))
                    if j >= i:
                        j += 1
                    error_j = (alphas * signs) @ gram[:, j] + b - signs[j]
                    alpha_i_old, alpha_j_old = alphas[i], alphas[j]
                    if signs[i] != signs[j]:
                        low = max(0.0, alphas[j] - alphas[i])
                        high = min(self.C, self.C + alphas[j] - alphas[i])
                    else:
                        low = max(0.0, alphas[i] + alphas[j] - self.C)
                        high = min(self.C, alphas[i] + alphas[j])
                    if low == high:
                        continue
                    eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                    if eta >= 0:
                        continue
                    alphas[j] -= signs[j] * (error_i - error_j) / eta
                    alphas[j] = min(high, max(low, alphas[j]))
                    if abs(alphas[j] - alpha_j_old) < 1e-7:
                        continue
                    alphas[i] += (signs[i] * signs[j]
                                  * (alpha_j_old - alphas[j]))
                    b1 = (b - error_i
                          - signs[i] * (alphas[i] - alpha_i_old) * gram[i, i]
                          - signs[j] * (alphas[j] - alpha_j_old) * gram[i, j])
                    b2 = (b - error_j
                          - signs[i] * (alphas[i] - alpha_i_old) * gram[i, j]
                          - signs[j] * (alphas[j] - alpha_j_old) * gram[j, j])
                    if 0 < alphas[i] < self.C:
                        b = b1
                    elif 0 < alphas[j] < self.C:
                        b = b2
                    else:
                        b = 0.5 * (b1 + b2)
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
            iteration += 1

        self.alphas_ = alphas
        self.b_ = b
        self._signs = signs
        support = alphas > 1e-8
        self.support_ = np.flatnonzero(support)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin for each row of X (or kernel rows vs training
        set when the kernel is precomputed: shape [n_test, n_train])."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if self.kernel == "precomputed":
            kernel_rows = X
            if kernel_rows.shape[1] != self.alphas_.size:
                raise ValueError(
                    "precomputed test kernel must have one column per "
                    "training sample"
                )
        else:
            kernel_rows = self._gram(np.atleast_2d(X), self._train_X)
        return kernel_rows @ (self.alphas_ * self._signs) + self.b_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (original label values)."""
        margins = self.decision_function(X)
        return np.where(margins >= 0, self.classes_[1], self.classes_[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("SVM is not fitted; call fit first")
