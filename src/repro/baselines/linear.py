"""Linear and ridge regression baselines (closed form)."""

from __future__ import annotations


import numpy as np


class LinearRegression:
    """Ordinary least squares via the normal equations (lstsq)."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        design = self._design(X)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return X @ self.coef_ + self.intercept_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=float).reshape(-1)
        residual = ((y - self.predict(X)) ** 2).sum()
        total = ((y - y.mean()) ** 2).sum()
        if total == 0:
            return 1.0 if residual == 0 else 0.0
        return 1.0 - residual / total

    def _design(self, X: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([np.ones((X.shape[0], 1)), X])
        return X


class RidgeRegression(LinearRegression):
    """L2-regularized least squares; intercept is not penalized."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        super().__init__(fit_intercept=fit_intercept)
        self.alpha = float(alpha)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        design = self._design(X)
        dim = design.shape[1]
        penalty = self.alpha * np.eye(dim)
        if self.fit_intercept:
            penalty[0, 0] = 0.0
        solution = np.linalg.solve(
            design.T @ design + penalty, design.T @ y
        )
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        self._fitted = True
        return self
