"""Multi-layer perceptron with numpy backprop.

Supports binary classification (sigmoid output + cross entropy) and
regression (linear output + mean squared error). Used as the strong
classical baseline in experiments E2 and E13.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_grad(activation: np.ndarray) -> np.ndarray:
    return 1.0 - activation ** 2


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(activation: np.ndarray) -> np.ndarray:
    return (activation > 0).astype(float)


_ACTIVATIONS = {"tanh": (_tanh, _tanh_grad), "relu": (_relu, _relu_grad)}


class MLP:
    """A small fully connected network trained with Adam.

    Parameters
    ----------
    hidden:
        Hidden layer widths, e.g. ``(16, 16)``.
    task:
        ``"classification"`` (binary, sigmoid head) or ``"regression"``.
    """

    def __init__(self, hidden: Sequence[int] = (16,),
                 task: str = "classification", activation: str = "tanh",
                 learning_rate: float = 0.01, max_iter: int = 500,
                 batch_size: Optional[int] = None, l2: float = 0.0,
                 seed: Optional[int] = 0):
        if task not in ("classification", "regression"):
            raise ValueError("task must be classification or regression")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"activation must be one of {sorted(_ACTIVATIONS)}")
        if any(h < 1 for h in hidden):
            raise ValueError("hidden widths must be positive")
        self.hidden = tuple(int(h) for h in hidden)
        self.task = task
        self.activation = activation
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.batch_size = batch_size
        self.l2 = l2
        self._rng = np.random.default_rng(seed)
        self._fitted = False

    # ------------------------------------------------------------------
    def _init_params(self, input_dim: int) -> None:
        sizes = [input_dim, *self.hidden, 1]
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self._weights.append(
                self._rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        act_fn, _ = _ACTIVATIONS[self.activation]
        activations = [X]
        out = X
        for w, b in zip(self._weights[:-1], self._biases[:-1]):
            out = act_fn(out @ w + b)
            activations.append(out)
        out = out @ self._weights[-1] + self._biases[-1]
        if self.task == "classification":
            out = 1.0 / (1.0 + np.exp(-np.clip(out, -30, 30)))
        return out.reshape(-1), activations

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLP":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        if self.task == "classification":
            self.classes_ = np.unique(y)
            if self.classes_.size != 2:
                raise ValueError("MLP classifier is binary here")
            targets = (y == self.classes_[1]).astype(float)
        else:
            targets = y.astype(float)

        self._init_params(X.shape[1])
        _, act_grad = _ACTIVATIONS[self.activation]
        n = X.shape[0]
        batch = self.batch_size or n
        # Adam state per parameter tensor.
        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        for _ in range(self.max_iter):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start: start + batch]
                xb, tb = X[rows], targets[rows]
                predictions, activations = self._forward(xb)
                # Both heads reduce to the same output delta.
                delta = (predictions - tb).reshape(-1, 1) / rows.size
                grads_w: List[np.ndarray] = [None] * len(self._weights)
                grads_b: List[np.ndarray] = [None] * len(self._biases)
                for layer in reversed(range(len(self._weights))):
                    grads_w[layer] = (activations[layer].T @ delta
                                      + self.l2 * self._weights[layer])
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self._weights[layer].T
                                 * act_grad(activations[layer]))
                step += 1
                for layer in range(len(self._weights)):
                    for params, grads, m, v in (
                        (self._weights, grads_w, m_w, v_w),
                        (self._biases, grads_b, m_b, v_b),
                    ):
                        m[layer] = beta1 * m[layer] + (1 - beta1) * grads[layer]
                        v[layer] = (beta2 * v[layer]
                                    + (1 - beta2) * grads[layer] ** 2)
                        m_hat = m[layer] / (1 - beta1 ** step)
                        v_hat = v[layer] / (1 - beta2 ** step)
                        params[layer] = params[layer] - (
                            self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
                        )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        if self.task != "classification":
            raise RuntimeError("predict_proba is classification-only")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        probabilities, _ = self._forward(X)
        return probabilities

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        outputs, _ = self._forward(X)
        if self.task == "classification":
            return np.where(outputs >= 0.5, self.classes_[1], self.classes_[0])
        return outputs

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy (classification) or R^2 (regression)."""
        y = np.asarray(y).reshape(-1)
        if self.task == "classification":
            return float((self.predict(X) == y).mean())
        predictions = self.predict(X)
        total = ((y - y.mean()) ** 2).sum()
        if total == 0:
            return 1.0
        return 1.0 - float(((y - predictions) ** 2).sum() / total)
