"""Classical machine-learning baselines, implemented from scratch.

Every quantum model in :mod:`repro.qml` is benchmarked against one of
these. They follow the familiar ``fit`` / ``predict`` / ``score``
estimator shape.
"""

from .kernels import (
    linear_kernel,
    make_kernel,
    median_heuristic_gamma,
    polynomial_kernel,
    rbf_kernel,
)
from .knn import KNNClassifier
from .linear import LinearRegression, RidgeRegression
from .logistic import LogisticRegression
from .mlp import MLP
from .svm import SVM

__all__ = [
    "linear_kernel",
    "make_kernel",
    "median_heuristic_gamma",
    "polynomial_kernel",
    "rbf_kernel",
    "KNNClassifier",
    "LinearRegression",
    "RidgeRegression",
    "LogisticRegression",
    "MLP",
    "SVM",
]
