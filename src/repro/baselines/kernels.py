"""Classical kernel functions for the SVM baseline and comparisons."""

from __future__ import annotations

from typing import Callable

import numpy as np

KernelFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Gram matrix of inner products ``K[i, j] = <x_i, y_j>``."""
    return np.asarray(x) @ np.asarray(y).T


def polynomial_kernel(x: np.ndarray, y: np.ndarray, degree: int = 3,
                      coef0: float = 1.0, gamma: float = 1.0) -> np.ndarray:
    """``(gamma <x, y> + coef0) ** degree``."""
    return (gamma * linear_kernel(x, y) + coef0) ** degree


def rbf_kernel(x: np.ndarray, y: np.ndarray,
               gamma: float = 1.0) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma ||x - y||^2)``."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.atleast_2d(np.asarray(y, dtype=float))
    sq_x = (x ** 2).sum(axis=1)[:, None]
    sq_y = (y ** 2).sum(axis=1)[None, :]
    sq_dist = sq_x + sq_y - 2.0 * x @ y.T
    np.maximum(sq_dist, 0.0, out=sq_dist)
    return np.exp(-gamma * sq_dist)


def make_kernel(name: str, **kwargs) -> KernelFunction:
    """Resolve a kernel by name, currying hyperparameters."""
    name = name.lower()
    if name == "linear":
        return linear_kernel
    if name == "poly":
        return lambda x, y: polynomial_kernel(x, y, **kwargs)
    if name == "rbf":
        return lambda x, y: rbf_kernel(x, y, **kwargs)
    raise KeyError(f"unknown kernel {name!r}; choose linear, poly or rbf")


def median_heuristic_gamma(x: np.ndarray) -> float:
    """Bandwidth via the median pairwise squared distance heuristic."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
    upper = sq[np.triu_indices_from(sq, k=1)]
    median = float(np.median(upper))
    if median <= 0:
        return 1.0
    return 1.0 / median
