"""``python -m repro.experiments serve`` — run the HTTP front end.

Telemetry layers default **on** for a server process (a long-running
network service without metrics or trace context defeats the point of
PRs 6–9); ``--no-metrics`` / ``--no-context`` opt out. Tracing and the
flight recorder stay opt-in via their usual environment switches
(``REPRO_TRACE_DIR`` is not consulted here; call ``enable_tracing``
consumers as needed) plus ``--trace`` below.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..telemetry import context as _context
from ..telemetry import flight as _flight
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .app import ReproServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Serve the solve service over HTTP "
                    "(jobs, SSE streams, metrics).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8351,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="solve workers; 0 = one inline thread "
                             "worker (no processes)")
    parser.add_argument("--mode", choices=("process", "thread"),
                        default=None,
                        help="worker mode override (default: process "
                             "when --workers > 0)")
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--cache-entries", type=int, default=256)
    parser.add_argument("--cache-shards", type=int, default=8)
    parser.add_argument("--default-deadline", type=float, default=None,
                        help="per-job wall-clock budget in seconds")
    parser.add_argument("--quota-rate", type=float, default=20.0,
                        help="per-tenant sustained submissions/second")
    parser.add_argument("--quota-burst", type=float, default=40.0)
    parser.add_argument("--max-inflight", type=int, default=16,
                        help="per-tenant concurrent-job cap")
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument("--no-metrics", action="store_true",
                        help="do not enable the metrics registry")
    parser.add_argument("--no-context", action="store_true",
                        help="do not enable trace-context propagation")
    parser.add_argument("--trace", action="store_true",
                        help="enable the in-process event tracer")
    parser.add_argument("--flight", action="store_true",
                        help="enable the failure flight recorder")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.no_metrics:
        _metrics.enable_metrics()
    if not args.no_context:
        _context.enable_context()
    if args.trace:
        _trace.enable_tracing()
    if args.flight:
        _flight.enable_flight()
    server = ReproServer(
        host=args.host, port=args.port, workers=args.workers,
        mode=args.mode, queue_capacity=args.queue_capacity,
        cache_entries=args.cache_entries,
        cache_shards=args.cache_shards,
        default_deadline=args.default_deadline,
        quota_rate=args.quota_rate, quota_burst=args.quota_burst,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
    )
    server.run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
