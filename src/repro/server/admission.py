"""Admission control in front of the bounded solve queue.

Three independent gates run, in order, before a submission is allowed
to touch :class:`~repro.service.SolveService`:

1. **Per-tenant token bucket** — sustained request *rate*. Each tenant
   (the ``X-Tenant`` header) gets a bucket of ``quota_burst`` tokens
   refilled at ``quota_rate`` tokens/second; an empty bucket means 429
   with a ``Retry-After`` computed from the exact refill deficit.
2. **Per-tenant max-inflight cap** — concurrent *occupancy*. Accepted
   jobs hold one slot from admission until their terminal callback;
   at the cap the tenant is rejected until a job finishes.
3. **Queue-depth backpressure** — global protection of the bounded
   :class:`~repro.service.queue.JobQueue`. When the queue reports
   itself at capacity the submission is rejected *before* enqueueing
   (and :class:`~repro.service.QueueFullError` raised by a racing
   ``submit`` maps to the same 429).

All three reject with HTTP 429 + ``Retry-After`` — the server never
blocks the event loop waiting for capacity. The controller is
thread-safe: ``release`` runs from solve-dispatcher threads (done
callbacks), ``admit`` from the event loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..telemetry import metrics as _metrics

#: Suggested client back-off when the rejection has no natural refill
#: time (inflight cap, full queue): one typical small-job latency.
DEFAULT_RETRY_AFTER = 1.0


def _rejections_total(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "server_rejected_total",
        "admissions rejected by reason (quota, inflight, queue, "
        "draining)",
        ("reason",),
    )


class TokenBucket:
    """Classic token bucket; caller provides the clock and the lock."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float,
                 now: Optional[float] = None):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic() if now is None else now

    def try_take(self, now: Optional[float] = None
                 ) -> Tuple[bool, float]:
        """Take one token; on failure return the refill wait in seconds."""
        if now is None:
            now = time.monotonic()
        elapsed = max(now - self.updated, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call."""

    allowed: bool
    reason: str = "ok"
    retry_after: float = 0.0
    message: str = ""

    @property
    def status(self) -> int:
        return 200 if self.allowed else 429


class AdmissionController:
    """Per-tenant quotas and inflight caps over one shared queue."""

    def __init__(self, *, quota_rate: float = 20.0,
                 quota_burst: float = 40.0, max_inflight: int = 16,
                 queue_depth: Optional[Callable[[], Dict[str, Any]]] = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.quota_rate = float(quota_rate)
        self.quota_burst = float(quota_burst)
        self.max_inflight = int(max_inflight)
        #: ``() -> {"live": int, "capacity": int}`` — usually the
        #: service queue's ``snapshot``; ``None`` skips the gate (the
        #: racing :class:`QueueFullError` path still protects it).
        self._queue_depth = queue_depth
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight: Dict[str, int] = {}
        self.admitted = 0
        self.rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _reject(self, reason: str, retry_after: float,
                message: str) -> AdmissionDecision:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        registry = _metrics.get_registry()
        if registry is not None:
            _rejections_total(registry).labels(reason=reason).inc()
        return AdmissionDecision(False, reason, retry_after, message)

    def admit(self, tenant: str) -> AdmissionDecision:
        """Run all gates for one submission; takes an inflight slot.

        On success the tenant holds one inflight slot (and one bucket
        token is consumed); the caller **must** pair every allowed
        admission with exactly one :meth:`release` — on job completion
        or on a failed enqueue.
        """
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.quota_rate, self.quota_burst)
                self._buckets[tenant] = bucket
            taken, retry_after = bucket.try_take()
            if not taken:
                return self._reject(
                    "quota", retry_after,
                    f"tenant {tenant!r} exceeded its request quota "
                    f"({self.quota_rate:g}/s, burst {self.quota_burst:g})",
                )
            inflight = self._inflight.get(tenant, 0)
            if inflight >= self.max_inflight:
                # The consumed token is deliberately not refunded: a
                # tenant hammering a full inflight cap still spends
                # quota, which is what keeps retry storms bounded.
                return self._reject(
                    "inflight", DEFAULT_RETRY_AFTER,
                    f"tenant {tenant!r} has {inflight} jobs in flight "
                    f"(cap {self.max_inflight})",
                )
            if self._queue_depth is not None:
                depth = self._queue_depth()
                live = int(depth.get("live", 0))
                capacity = int(depth.get("capacity", 0))
                if capacity and live >= capacity:
                    return self._reject(
                        "queue", DEFAULT_RETRY_AFTER,
                        f"job queue at capacity ({live}/{capacity})",
                    )
            self._inflight[tenant] = inflight + 1
            self.admitted += 1
            return AdmissionDecision(True)

    def reject_queue_full(self, tenant: str) -> AdmissionDecision:
        """Record a :class:`QueueFullError` raised by a racing submit."""
        with self._lock:
            return self._reject(
                "queue", DEFAULT_RETRY_AFTER,
                "job queue at capacity",
            )

    def release(self, tenant: str) -> None:
        """Return the inflight slot taken by an allowed admission."""
        with self._lock:
            count = self._inflight.get(tenant, 0)
            if count <= 1:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = count - 1

    # ------------------------------------------------------------------
    def inflight(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._inflight.get(tenant, 0)
            return sum(self._inflight.values())

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "quota_rate": self.quota_rate,
                "quota_burst": self.quota_burst,
                "max_inflight": self.max_inflight,
                "tenants": len(self._buckets),
                "inflight": dict(self._inflight),
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
            }
