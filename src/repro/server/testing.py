"""In-process server harness for tests and benchmarks.

:class:`ServerThread` runs a :class:`~repro.server.app.ReproServer` on
its own event loop in a daemon thread and exposes the bound port plus
a thread-safe stop. :class:`Client` is a tiny ``http.client`` wrapper
speaking the server's JSON and SSE dialects — the same stdlib-only
client the soak benchmark's load generators use.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, Iterator, Optional, Tuple

from .app import ReproServer


class ServerThread:
    """Run a server on a background thread; context-manager friendly.

    ``kwargs`` go straight to :class:`ReproServer`; ``port`` defaults
    to 0 (ephemeral). Signal handlers are not installed (the loop is
    not on the main thread) — ``stop()`` triggers the same graceful
    drain SIGTERM would.
    """

    def __init__(self, **kwargs: Any):
        kwargs.setdefault("port", 0)
        self.server = ReproServer(**kwargs)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-server",
                                        daemon=True)

    def _run(self) -> None:
        import asyncio

        async def serve() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.wait_closed()

        try:
            asyncio.run(serve())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start
            self._error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("server did not start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error}"
            ) from self._error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.host, self.server.port

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain, then join the loop thread."""
        if not self._thread.is_alive():
            return
        self.server.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server drain did not finish in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


class Client:
    """Minimal JSON/SSE client over one keep-alive connection."""

    def __init__(self, host: str, port: int, *,
                 tenant: Optional[str] = None, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        return headers

    def request(self, method: str, path: str,
                body: Optional[Any] = None
                ) -> Tuple[int, Dict[str, str], Any]:
        """One request → (status, headers, parsed JSON or text).

        Retries once on a stale keep-alive connection.
        """
        payload = (None if body is None
                   else json.dumps(body).encode("utf-8"))
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers=self._headers())
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError):
                self.close()
                if attempt:
                    raise
        headers = {name.lower(): value
                   for name, value in response.getheaders()}
        content_type = headers.get("content-type", "")
        if "json" in content_type:
            document = json.loads(raw.decode("utf-8"))
        else:
            document = raw.decode("utf-8", "replace")
        return response.status, headers, document

    # -- convenience wrappers ------------------------------------------
    def get(self, path: str) -> Tuple[int, Dict[str, str], Any]:
        return self.request("GET", path)

    def submit(self, body: Dict[str, Any]
               ) -> Tuple[int, Dict[str, str], Any]:
        return self.request("POST", "/v1/jobs", body)

    def wait_result(self, job_id: str, timeout: float = 60.0
                    ) -> Tuple[int, Any]:
        """Block (server-side long poll) until the job is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not done in "
                                   f"{timeout}s")
            wait = min(max(remaining, 0.1), 10.0)
            status, _, document = self.get(
                f"/v1/jobs/{job_id}/result?wait={wait:.1f}")
            if status != 202:
                return status, document

    def stream(self, job_id: str, *, max_seconds: float = 60.0
               ) -> Iterator[Tuple[str, Dict[str, Any], float]]:
        """Yield ``(event, data, receive_unix)`` SSE frames until the
        terminal ``done`` event (on a dedicated connection)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=max_seconds)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read().decode("utf-8", "replace")
                raise RuntimeError(
                    f"stream failed: {response.status} {raw}")
            event_name = ""
            data_line = ""
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("event: "):
                    event_name = text[len("event: "):]
                elif text.startswith("data: "):
                    data_line = text[len("data: "):]
                elif text == "":
                    if event_name:
                        data = json.loads(data_line) if data_line else {}
                        yield event_name, data, time.time()
                        if event_name == "done":
                            return
                    event_name, data_line = "", ""
        finally:
            conn.close()
