"""repro.server: the asyncio HTTP front end over the solve service.

The paper frames quantum-accelerated optimization as a database
component, and a database component is reachable over the network by
many concurrent clients. This package is that boundary — stdlib-only
(``asyncio`` + hand-rolled HTTP/1.1), wrapping one
:class:`~repro.service.SolveService` per process:

* **Jobs API** — ``POST /v1/jobs`` accepts raw compiled-problem terms
  or a pipeline workload spec; submissions are content-addressed
  (sha256 of the canonical body) so retries are idempotent.
* **Live streams** — ``GET /v1/jobs/{id}/stream`` replays and then
  tails the job's event journal as server-sent events
  (``repro-stream/v1``): lifecycle instants, per-iteration
  convergence rows, the result document, a terminal marker.
* **Admission control** — per-tenant token buckets and inflight caps
  plus queue-depth backpressure in front of the bounded job queue;
  rejections are fast 429s with ``Retry-After``, never blocked loops.
* **Operations** — ``/healthz``, Prometheus ``/metrics``, per-request
  trace contexts joining HTTP spans to job timelines (``obs-report
  --source server``), graceful SIGTERM drain that finishes inflight
  work and flushes flight capsules.

Quick start::

    python -m repro.experiments serve --workers 2 --port 8351

    curl -s localhost:8351/v1/jobs -d '{
      "problem": {"kind": "qubo", "num_variables": 2,
                   "linear": {"0": -1.0}, "quadratic": [[0, 1, 2.0]]},
      "solver": "sa", "config": {"seed": 7}}'

Embedding and tests use :class:`~repro.server.testing.ServerThread`.
"""

from .admission import AdmissionController, AdmissionDecision, TokenBucket
from .app import ReproServer, SERVER_SCHEMA
from .http import HttpError, Request
from .jobs import STREAM_SCHEMA, JobJournal, JobRegistry, ServerJob
from .payloads import (
    PayloadError,
    Submission,
    build_problem,
    idempotency_key,
    parse_submission,
    problem_payload,
    result_document,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "HttpError",
    "JobJournal",
    "JobRegistry",
    "PayloadError",
    "ReproServer",
    "Request",
    "SERVER_SCHEMA",
    "STREAM_SCHEMA",
    "ServerJob",
    "Submission",
    "TokenBucket",
    "build_problem",
    "idempotency_key",
    "parse_submission",
    "problem_payload",
    "result_document",
]
