"""Server-side job records: journals, registry, and the sync→async
bridge.

A :class:`ServerJob` is the HTTP view of one submission. Its
:class:`JobJournal` is the append-only event log the SSE stream route
replays and then tails: lifecycle instants (``submitted``,
``cache_hit``, ``finished``), one ``convergence`` event per
:class:`~repro.telemetry.progress.ProgressTrace` row, the ``result``
document and a terminal ``done`` marker.

The bridge: solve completion fires :meth:`JobHandle.add_done_callback`
on a *dispatcher thread*. The callback appends to the journal under a
plain ``threading.Lock`` and then wakes event-loop readers via
``loop.call_soon_threadsafe`` — the asyncio side never takes a lock
that a solver thread holds while blocking, and the event loop never
blocks on a solve.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

#: Schema tag carried by the SSE ``hello`` event and the docs.
STREAM_SCHEMA = "repro-stream/v1"

#: Server-job lifecycle states (the service's richer JobStatus maps
#: onto these at the boundary).
JOB_STATES = ("queued", "running", "done", "failed", "timeout",
              "cancelled")
_TERMINAL = frozenset(("done", "failed", "timeout", "cancelled"))


class JobJournal:
    """Append-only, thread-safe event log with async tailing.

    Writers may be any thread (dispatcher callbacks, pipeline executor
    threads, the event loop itself); readers are event-loop coroutines.
    One shared ``asyncio.Event`` wakes all tails; each tail keeps its
    own replay cursor, so a client connecting after completion replays
    the full history and ends immediately.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._lock = threading.Lock()
        self._events: List[Tuple[str, Dict[str, Any]]] = []
        self._terminal = False
        self._wakeup = asyncio.Event()

    def append(self, event: str, data: Dict[str, Any], *,
               terminal: bool = False) -> None:
        """Record one event (any thread); wakes event-loop tails."""
        record = dict(data)
        record.setdefault("ts", time.time())
        with self._lock:
            if self._terminal:
                return
            self._events.append((event, record))
            if terminal:
                self._terminal = True
        try:
            self._loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:
            # Loop already closed (server shutdown raced a late
            # callback); nobody is left to wake.
            pass

    def snapshot(self) -> Tuple[List[Tuple[str, Dict[str, Any]]], bool]:
        with self._lock:
            return list(self._events), self._terminal

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._terminal

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    async def tail(self) -> AsyncIterator[Tuple[str, Dict[str, Any]]]:
        """Replay all events, then yield new ones until terminal."""
        index = 0
        while True:
            with self._lock:
                chunk = self._events[index:]
                terminal = self._terminal
            for item in chunk:
                yield item
            index += len(chunk)
            if terminal:
                return
            self._wakeup.clear()
            with self._lock:
                # An append may have landed (and set the already-run
                # wakeup) between the snapshot above and the clear —
                # re-check before sleeping so the event is never lost.
                if len(self._events) > index or self._terminal:
                    continue
            await self._wakeup.wait()


class ServerJob:
    """One submission's server-side state (thread-safe)."""

    def __init__(self, public_id: str, *, kind: str, tenant: str,
                 solver: str, journal: JobJournal,
                 loop: asyncio.AbstractEventLoop,
                 tag: Optional[Any] = None):
        self.public_id = public_id
        self.kind = kind
        self.tenant = tenant
        self.solver = solver
        self.tag = tag
        self.journal = journal
        self.created_at = time.time()
        self.trace_id: Optional[str] = None
        self.service_job_id: Optional[int] = None
        self._loop = loop
        self._lock = threading.Lock()
        self._status = "queued"
        self._result: Optional[Dict[str, Any]] = None
        self._error: Optional[Dict[str, Any]] = None
        self.finished_at: Optional[float] = None
        #: Event-loop-side completion signal (set threadsafe from the
        #: finishing thread); ``GET .../result?wait=N`` awaits it.
        self.completed = asyncio.Event()

    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL

    @property
    def result(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._result

    @property
    def error(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._error

    def mark_running(self) -> None:
        with self._lock:
            if self._status == "queued":
                self._status = "running"

    def finish(self, status: str, *,
               result: Optional[Dict[str, Any]] = None,
               error: Optional[Dict[str, Any]] = None) -> bool:
        """Terminal transition, exactly once (any thread)."""
        if status not in _TERMINAL:
            raise ValueError(f"not a terminal status: {status!r}")
        with self._lock:
            if self._status in _TERMINAL:
                return False
            self._status = status
            self._result = result
            self._error = error
            self.finished_at = time.time()
        try:
            self._loop.call_soon_threadsafe(self.completed.set)
        except RuntimeError:
            pass
        return True

    def describe(self) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` status document."""
        with self._lock:
            status = self._status
            error = self._error
        document: Dict[str, Any] = {
            "job_id": self.public_id,
            "kind": self.kind,
            "status": status,
            "tenant": self.tenant,
            "solver": self.solver,
            "trace_id": self.trace_id,
            "service_job_id": self.service_job_id,
            "created_unix": self.created_at,
            "finished_unix": self.finished_at,
            "events": len(self.journal),
            "links": {
                "self": f"/v1/jobs/{self.public_id}",
                "result": f"/v1/jobs/{self.public_id}/result",
                "stream": f"/v1/jobs/{self.public_id}/stream",
            },
        }
        if self.tag is not None:
            document["tag"] = self.tag
        if error is not None:
            document["error"] = error
        return document


class JobRegistry:
    """Bounded public-id → :class:`ServerJob` map.

    Insertion-ordered; once past ``max_jobs`` the oldest *terminal*
    jobs are evicted (live jobs are never dropped — their handles and
    streams are still wired to them, so the bound can be temporarily
    exceeded under extreme inflight counts).
    """

    def __init__(self, max_jobs: int = 4096):
        if max_jobs < 1:
            raise ValueError("max_jobs must be positive")
        self.max_jobs = max_jobs
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, ServerJob]" = OrderedDict()
        self.evicted = 0

    def add(self, job: ServerJob) -> None:
        with self._lock:
            self._jobs[job.public_id] = job
            if len(self._jobs) > self.max_jobs:
                for public_id, candidate in list(self._jobs.items()):
                    if len(self._jobs) <= self.max_jobs:
                        break
                    if candidate.done:
                        del self._jobs[public_id]
                        self.evicted += 1

    def get(self, public_id: str) -> Optional[ServerJob]:
        with self._lock:
            return self._jobs.get(public_id)

    def remove(self, public_id: str) -> None:
        with self._lock:
            self._jobs.pop(public_id, None)

    def live(self) -> List[ServerJob]:
        with self._lock:
            jobs = list(self._jobs.values())
        return [job for job in jobs if not job.done]

    def jobs(self) -> List[ServerJob]:
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            jobs = list(self._jobs.values())
            evicted = self.evicted
        by_status: Dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "total": len(jobs),
            "max_jobs": self.max_jobs,
            "evicted": evicted,
            "by_status": by_status,
        }
