"""The asyncio HTTP front end over :class:`~repro.service.SolveService`.

One :class:`ReproServer` owns one solve service (sharded result cache,
warm worker pool), an :class:`~repro.server.admission.AdmissionController`,
and a :class:`~repro.server.jobs.JobRegistry`. The event loop only
parses requests, runs admission, and enqueues — solves execute on the
service's dispatcher threads / worker processes, and completion comes
back over ``loop.call_soon_threadsafe`` bridges, so the loop never
blocks on a solve.

Routes::

    POST /v1/jobs              submit (problem or workload body)
    GET  /v1/jobs              recent-job listing
    GET  /v1/jobs/{id}         status + provenance (incl. trace_id)
    GET  /v1/jobs/{id}/result  result document (``?wait=N`` to block)
    GET  /v1/jobs/{id}/stream  SSE: replay + tail (repro-stream/v1)
    GET  /healthz              liveness / drain state / stats
    GET  /metrics              Prometheus text exposition

Graceful drain (SIGTERM/SIGINT): new submissions get 503, inflight
jobs finish, flight capsules flush, then the listener closes.
"""

from __future__ import annotations

import asyncio
import functools
import math
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any, Dict, Optional, Tuple

from ..compile.dispatch import SolverConfig
from ..db.workloads import generate_join_workload
from ..pipeline.pipeline import OptimizationPipeline
from ..service import QueueFullError, ServiceError, SolveService
from ..service.queue import JobStatus
from ..telemetry import context as _context
from ..telemetry import flight as _flight
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .admission import AdmissionController
from .http import (
    HttpError,
    Request,
    read_request,
    send_json,
    send_text,
    sse_event,
    start_sse,
)
from .jobs import STREAM_SCHEMA, JobJournal, JobRegistry, ServerJob
from .payloads import (
    PayloadError,
    Submission,
    idempotency_key,
    parse_submission,
    result_document,
)

#: healthz document schema tag.
SERVER_SCHEMA = "repro-server/v1"

#: Formulations the workload route accepts (they take a join graph).
_WORKLOAD_FORMULATIONS = ("joinorder",)

#: Bounds keeping a single workload submission's generation cost
#: trivially small on the event loop.
_MAX_WORKLOAD_RELATIONS = 14
_MAX_INSTANCES_PER_CELL = 64


def _requests_total(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "server_requests_total",
        "HTTP requests by route, method and status",
        ("route", "method", "status"),
    )


def _request_seconds(registry: "_metrics.MetricsRegistry"):
    return registry.histogram(
        "server_request_seconds",
        "HTTP request handling wall clock by route",
        ("route",),
    )


def _jobs_total(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "server_jobs_total",
        "server jobs reaching a terminal status",
        ("status",),
    )


def _streams_open(registry: "_metrics.MetricsRegistry"):
    return registry.gauge(
        "server_streams_open", "SSE streams currently connected")


def _stream_events_total(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "server_stream_events_total", "SSE events written to clients")


class ReproServer:
    """The HTTP front end; one instance per process.

    Parameters
    ----------
    workers:
        Solve-service worker count. ``0`` maps to one inline thread
        worker (no processes — the parity/debug configuration);
        positive counts run the warm process pool unless ``mode``
        overrides it.
    quota_rate / quota_burst / max_inflight:
        Per-tenant admission knobs (see
        :class:`~repro.server.admission.AdmissionController`).
    queue_capacity:
        Bound on the service's job queue — the backpressure horizon.
    cache_shards:
        Result-cache shards (concurrent HTTP readers shouldn't
        serialize on one cache lock).
    drain_timeout:
        Longest a graceful drain waits for inflight jobs.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, mode: Optional[str] = None,
                 queue_capacity: int = 64, cache_entries: int = 256,
                 cache_shards: int = 8,
                 default_deadline: Optional[float] = None,
                 quota_rate: float = 20.0, quota_burst: float = 40.0,
                 max_inflight: int = 16, max_jobs: int = 4096,
                 batch_limit: int = 8, drain_timeout: float = 30.0,
                 start_method: Optional[str] = None):
        self.host = host
        self.port = port
        self.workers = workers
        self.drain_timeout = drain_timeout
        if workers <= 0:
            resolved_mode, max_workers = "thread", 1
        else:
            resolved_mode, max_workers = (mode or "process"), workers
        self.mode = resolved_mode
        self.service = SolveService(
            max_workers=max_workers, mode=resolved_mode,
            queue_capacity=queue_capacity, cache_entries=cache_entries,
            cache_shards=cache_shards, default_deadline=default_deadline,
            start_method=start_method, batch_limit=batch_limit,
        )
        self.admission = AdmissionController(
            quota_rate=quota_rate, quota_burst=quota_burst,
            max_inflight=max_inflight,
            queue_depth=self.service.queue_snapshot,
        )
        self.jobs = JobRegistry(max_jobs)
        #: Workload submissions block on ``handle.result()`` inside the
        #: pipeline, so they run here — never on the event loop.
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, max_workers),
            thread_name_prefix="repro-http-workload")
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the real port after."""
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main-thread loops only)."""
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, functools.partial(self._begin_drain, signum))
            except (NotImplementedError, RuntimeError):
                return

    def _begin_drain(self, signum: Optional[int] = None) -> None:
        if self._drain_task is None:
            suffix = f" (signal {signum})" if signum else ""
            self._log(f"drain requested{suffix}")
            self._drain_task = self._loop.create_task(self.drain())

    def request_drain(self) -> None:
        """Thread-safe drain trigger (used by tests and embedders)."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._begin_drain)

    @property
    def draining(self) -> bool:
        return self._draining

    async def wait_closed(self) -> None:
        assert self._closed is not None
        await self._closed.wait()

    async def drain(self) -> None:
        """Stop accepting jobs, finish inflight, flush, close."""
        if self._draining:
            return
        self._draining = True
        deadline = time.monotonic() + self.drain_timeout
        live = self.jobs.live()
        self._log(f"draining: {len(live)} job(s) inflight")
        for job in live:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._log("drain timeout; abandoning remaining jobs")
                break
            try:
                await asyncio.wait_for(job.completed.wait(),
                                       timeout=remaining)
            except asyncio.TimeoutError:
                self._log("drain timeout; abandoning remaining jobs")
                break
        await asyncio.to_thread(self.service.shutdown)
        await asyncio.to_thread(self._executor.shutdown)
        recorder = _flight.get_flight_recorder()
        if recorder is not None:
            recorder.dump("server_drain", detail={
                "jobs": self.jobs.snapshot(),
                "admission": self.admission.snapshot(),
            })
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closed.set()
        self._log("drain complete")

    async def _serve(self) -> None:
        await self.start()
        self.install_signal_handlers()
        self._log(f"listening on http://{self.host}:{self.port} "
                  f"(mode={self.mode}, workers={self.workers})")
        await self.wait_closed()

    def run(self) -> None:
        """Blocking entry point for the ``serve`` CLI."""
        asyncio.run(self._serve())

    @staticmethod
    def _log(message: str) -> None:
        print(f"[repro.server] {message}", file=sys.stderr, flush=True)

    # -- connection handling ----------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await send_json(writer, exc.status, exc.body(),
                                    headers=exc.headers,
                                    keep_alive=False)
                    break
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                if not keep or not request.wants_keep_alive():
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _match(self, request: Request
               ) -> Tuple[str, str, Dict[str, str]]:
        """Path → (route template, handler name, params); 404/405."""
        path, method = request.path.rstrip("/") or "/", request.method
        table = {
            "/healthz": ("GET", "health"),
            "/metrics": ("GET", "metrics"),
        }
        if path in table:
            expected, handler = table[path]
            if method not in (expected, "HEAD"):
                raise HttpError(405, f"{method} not allowed on {path}")
            return path, handler, {}
        if path == "/v1/jobs":
            if method == "POST":
                return "/v1/jobs", "submit", {}
            if method in ("GET", "HEAD"):
                return "/v1/jobs", "list", {}
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            parts = path[len("/v1/jobs/"):].split("/")
            if len(parts) == 1 and parts[0]:
                route, handler = "/v1/jobs/{id}", "status"
            elif len(parts) == 2 and parts[1] in ("result", "stream"):
                route = f"/v1/jobs/{{id}}/{parts[1]}"
                handler = parts[1]
            else:
                raise HttpError(404, f"no such resource: {path}")
            if method not in ("GET", "HEAD"):
                raise HttpError(405, f"{method} not allowed on {route}")
            return route, handler, {"id": parts[0]}
        raise HttpError(404, f"no such resource: {path}")

    async def _dispatch(self, request: Request, writer) -> bool:
        started = time.perf_counter()
        tracer = _trace.get_tracer()
        start_us = tracer.timestamp_us() if tracer is not None else 0.0
        state = _context.get_context_state()
        status = 500
        keep = True
        try:
            route, handler_name, params = self._match(request)
        except HttpError as exc:
            request.route = "(unmatched)"
            await send_json(writer, exc.status, exc.body(),
                            headers=exc.headers)
            self._observe_request(request, exc.status, started)
            return True
        request.route = route
        #: One trace context per request, minted at entry: the solve
        #: submission inherits it, which is the join key obs-report's
        #: ``--source server`` correlates on.
        context = (state.mint(stage="server") if state is not None
                   else None)
        scope = (state.activate(context) if state is not None
                 else nullcontext())
        with scope:
            if tracer is not None:
                tracer.instant("server.request.received",
                               category="server",
                               args={"route": route,
                                     "method": request.method,
                                     "path": request.path})
            try:
                handler = getattr(self, f"_handle_{handler_name}")
                status, keep = await handler(request, writer, params,
                                             context)
            except HttpError as exc:
                status = exc.status
                await send_json(writer, exc.status, exc.body(),
                                headers=exc.headers)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                status, keep = 499, False
            except Exception as exc:  # noqa: BLE001 — boundary
                status, keep = 500, False
                self._log(f"internal error on {route}: "
                          f"{type(exc).__name__}: {exc}")
                try:
                    await send_json(
                        writer, 500,
                        {"error": f"{type(exc).__name__}: {exc}",
                         "status": 500},
                        keep_alive=False)
                except Exception:
                    pass
            finally:
                if tracer is not None:
                    tracer.complete(
                        "server.request", start_us, category="server",
                        args={"route": route, "method": request.method,
                              "status": status})
        self._observe_request(request, status, started)
        return keep

    def _observe_request(self, request: Request, status: int,
                         started: float) -> None:
        registry = _metrics.get_registry()
        if registry is None:
            return
        _requests_total(registry).labels(
            route=request.route or "(unmatched)",
            method=request.method, status=str(status)).inc()
        _request_seconds(registry).labels(
            route=request.route or "(unmatched)").observe(
            time.perf_counter() - started)

    # -- route handlers ----------------------------------------------------
    async def _handle_health(self, request: Request, writer, params,
                             context) -> Tuple[int, bool]:
        status = 503 if self._draining else 200
        payload = {
            "schema": SERVER_SCHEMA,
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "mode": self.mode,
            "workers": self.service.max_workers,
            "queue": self.service.queue_snapshot(),
            "jobs": self.jobs.snapshot(),
            "admission": self.admission.snapshot(),
        }
        await send_json(writer, status, payload)
        return status, True

    async def _handle_metrics(self, request: Request, writer, params,
                              context) -> Tuple[int, bool]:
        registry = _metrics.get_registry()
        if registry is None:
            await send_text(writer, 503,
                            "# metrics disabled "
                            "(start with --metrics / REPRO_METRICS=1)\n")
            return 503, True
        text = registry.to_prometheus()
        await send_text(
            writer, 200, text,
            content_type="text/plain; version=0.0.4; charset=utf-8")
        return 200, True

    async def _handle_list(self, request: Request, writer, params,
                           context) -> Tuple[int, bool]:
        jobs = self.jobs.jobs()
        limit = min(int(request.query.get("limit", 100) or 100), 1000)
        payload = {
            "count": len(jobs),
            "jobs": [job.describe() for job in jobs[-limit:]],
        }
        await send_json(writer, 200, payload)
        return 200, True

    async def _handle_submit(self, request: Request, writer, params,
                             context) -> Tuple[int, bool]:
        body = request.json()
        submission = parse_submission(body)
        public_id = idempotency_key(body)
        existing = self.jobs.get(public_id)
        if existing is not None:
            await send_json(writer, 200,
                            dict(existing.describe(), idempotent=True))
            return 200, True
        if self._draining:
            registry = _metrics.get_registry()
            if registry is not None:
                registry.counter(
                    "server_rejected_total",
                    "admissions rejected by reason (quota, inflight, "
                    "queue, draining)",
                    ("reason",)).labels(reason="draining").inc()
            raise HttpError(503, "server is draining; job rejected",
                            headers={"Retry-After": "30"},
                            body_extra={"reason": "draining"})
        tenant = request.tenant
        decision = self.admission.admit(tenant)
        if not decision.allowed:
            raise HttpError(
                429, decision.message,
                headers={"Retry-After":
                         str(max(1, math.ceil(decision.retry_after)))},
                body_extra={
                    "reason": decision.reason,
                    "retry_after_seconds":
                        round(decision.retry_after, 4),
                })

        journal = JobJournal(self._loop)
        job = ServerJob(public_id, kind=submission.kind, tenant=tenant,
                        solver=submission.solver, journal=journal,
                        loop=self._loop, tag=body.get("tag"))
        job.trace_id = context.trace_id if context is not None else None
        try:
            if submission.kind == "problem":
                self._submit_problem(job, submission)
            else:
                self._submit_workload(job, submission)
        except Exception:
            self.admission.release(tenant)
            raise
        await send_json(writer, 201,
                        dict(job.describe(), idempotent=False))
        return 201, True

    def _submit_problem(self, job: ServerJob,
                        submission: Submission) -> None:
        try:
            handle = self.service.submit(
                submission.problem, submission.solver,
                submission.config, priority=submission.priority,
                deadline=submission.deadline, repair=submission.repair,
                block=False)
        except QueueFullError:
            decision = self.admission.reject_queue_full(job.tenant)
            raise HttpError(
                429, decision.message,
                headers={"Retry-After":
                         str(max(1, math.ceil(decision.retry_after)))},
                body_extra={
                    "reason": "queue",
                    "retry_after_seconds":
                        round(decision.retry_after, 4),
                }) from None
        except (ValueError, TypeError) as exc:
            raise HttpError(400, str(exc)) from None
        except ServiceError as exc:
            raise HttpError(503, str(exc)) from None
        job.service_job_id = handle.job_id
        if handle.trace_id:
            job.trace_id = handle.trace_id
        self.jobs.add(job)
        job.journal.append("lifecycle", {
            "name": "submitted", "job_id": job.public_id,
            "service_job_id": handle.job_id, "solver": job.solver,
            "tenant": job.tenant, "trace_id": job.trace_id,
        })
        handle.add_done_callback(
            functools.partial(self._on_solve_done, job))

    def _on_solve_done(self, job: ServerJob, handle) -> None:
        """Solve completion → journal + registry (dispatcher thread)."""
        journal = job.journal
        try:
            status = handle.status
            if status is JobStatus.DONE:
                result = handle.result()
                service_block = result.provenance.get("service", {})
                if service_block.get("cache") == "hit":
                    journal.append("lifecycle", {
                        "name": "cache_hit", "job_id": job.public_id})
                for row in result.convergence or []:
                    journal.append("convergence", dict(row))
                journal.append("lifecycle", {
                    "name": "finished", "status": "done",
                    "job_id": job.public_id,
                    "cache": service_block.get("cache"),
                    "dispatch": service_block.get("dispatch"),
                    "queue_seconds": service_block.get("queue_seconds"),
                })
                document = result_document(result)
                journal.append("result", document)
                journal.append("done",
                               {"status": "done",
                                "job_id": job.public_id},
                               terminal=True)
                job.finish("done", result=document)
            else:
                error = handle.exception()
                error_doc = {
                    "type": (type(error).__name__ if error is not None
                             else status.value),
                    "message": (str(error) if error is not None
                                else status.value),
                }
                journal.append("lifecycle", {
                    "name": "finished", "status": status.value,
                    "job_id": job.public_id,
                })
                journal.append("error", error_doc)
                journal.append("done",
                               {"status": status.value,
                                "job_id": job.public_id},
                               terminal=True)
                job.finish(status.value, error=error_doc)
        except Exception as exc:  # noqa: BLE001 — dispatcher thread
            error_doc = {"type": type(exc).__name__,
                         "message": str(exc)}
            journal.append("error", error_doc)
            journal.append("done",
                           {"status": "failed",
                            "job_id": job.public_id},
                           terminal=True)
            job.finish("failed", error=error_doc)
        finally:
            self.admission.release(job.tenant)
            self._count_job(job.status)

    def _submit_workload(self, job: ServerJob,
                         submission: Submission) -> None:
        spec = submission.workload_spec
        formulation = spec.get("formulation", "joinorder")
        if formulation not in _WORKLOAD_FORMULATIONS:
            raise PayloadError(
                f"workload formulation must be one of "
                f"{_WORKLOAD_FORMULATIONS}, got {formulation!r}")
        try:
            topologies = list(spec.get("topologies", ["chain"]))
            sizes = [int(size) for size in spec.get("sizes", [6])]
            instances_per_cell = int(spec.get("instances_per_cell", 1))
            seed = int(spec.get("seed", 0))
            index = int(spec.get("index", 0))
        except (TypeError, ValueError) as exc:
            raise PayloadError(f"bad workload spec: {exc}") from None
        if any(size < 2 or size > _MAX_WORKLOAD_RELATIONS
               for size in sizes):
            raise PayloadError(
                f"workload sizes must be in "
                f"[2, {_MAX_WORKLOAD_RELATIONS}]")
        if not 1 <= instances_per_cell <= _MAX_INSTANCES_PER_CELL:
            raise PayloadError(
                f"instances_per_cell must be in "
                f"[1, {_MAX_INSTANCES_PER_CELL}]")
        try:
            workload = generate_join_workload(
                topologies, sizes, instances_per_cell, seed=seed)
        except (TypeError, ValueError) as exc:
            raise PayloadError(f"bad workload spec: {exc}") from None
        if not 0 <= index < len(workload):
            raise PayloadError(
                f"workload index {index} out of range "
                f"[0, {len(workload)})")
        instance = workload[index]
        try:
            pipeline = OptimizationPipeline(
                formulation, solve=submission.solver,
                service=self.service)
        except ValueError as exc:
            raise PayloadError(str(exc)) from None
        provenance = {
            "workload_key": workload.workload_key,
            "instance_key": instance.instance_key,
            "topology": instance.topology,
            "num_relations": instance.num_relations,
            "http": {"job_id": job.public_id, "tenant": job.tenant},
        }
        self.jobs.add(job)
        job.journal.append("lifecycle", {
            "name": "submitted", "job_id": job.public_id,
            "solver": job.solver, "tenant": job.tenant,
            "trace_id": job.trace_id, "kind": "workload",
            "instance_key": instance.instance_key,
        })
        self._executor.submit(
            self._run_workload, job, pipeline, instance.graph,
            submission.config, provenance)

    def _run_workload(self, job: ServerJob, pipeline, graph,
                      config: SolverConfig,
                      provenance: Dict[str, Any]) -> None:
        """Pipeline execution on an executor thread (blocks on solve)."""
        journal = job.journal
        job.mark_running()
        try:
            with _context.activate(job.trace_id, stage="server"):
                plan = pipeline.optimize(graph, config=config,
                                         provenance=provenance)
            if plan.provenance.get("trace_id"):
                job.trace_id = plan.provenance["trace_id"]
            for row in plan.convergence or []:
                journal.append("convergence", dict(row))
            document = plan.to_dict()
            journal.append("lifecycle", {
                "name": "finished", "status": "done",
                "job_id": job.public_id, "plan_status": plan.status,
            })
            journal.append("result", document)
            journal.append("done",
                           {"status": "done", "job_id": job.public_id},
                           terminal=True)
            job.finish("done", result=document)
        except Exception as exc:  # noqa: BLE001 — executor thread
            error_doc = {"type": type(exc).__name__,
                         "message": str(exc)}
            journal.append("lifecycle", {
                "name": "finished", "status": "failed",
                "job_id": job.public_id,
            })
            journal.append("error", error_doc)
            journal.append("done",
                           {"status": "failed",
                            "job_id": job.public_id},
                           terminal=True)
            job.finish("failed", error=error_doc)
        finally:
            self.admission.release(job.tenant)
            self._count_job(job.status)

    def _count_job(self, status: str) -> None:
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status=status).inc()

    def _get_job(self, params: Dict[str, str]) -> ServerJob:
        job = self.jobs.get(params["id"])
        if job is None:
            raise HttpError(404, f"no such job: {params['id']}")
        return job

    async def _handle_status(self, request: Request, writer, params,
                             context) -> Tuple[int, bool]:
        job = self._get_job(params)
        await send_json(writer, 200, job.describe())
        return 200, True

    async def _handle_result(self, request: Request, writer, params,
                             context) -> Tuple[int, bool]:
        job = self._get_job(params)
        wait = request.query.get("wait")
        if wait is not None and not job.done:
            try:
                timeout = min(max(float(wait), 0.0), 300.0)
            except ValueError:
                raise HttpError(400,
                                f"bad wait value: {wait!r}") from None
            try:
                await asyncio.wait_for(job.completed.wait(),
                                       timeout=timeout)
            except asyncio.TimeoutError:
                pass
        status = job.status
        if status == "done":
            await send_json(writer, 200, {
                "job_id": job.public_id, "status": status,
                "trace_id": job.trace_id, "result": job.result,
            })
            return 200, True
        if status in ("queued", "running"):
            await send_json(writer, 202, {
                "job_id": job.public_id, "status": status,
                "detail": "result not ready; retry or use ?wait=N",
            })
            return 202, True
        http_status = {"failed": 500, "timeout": 504,
                       "cancelled": 409}[status]
        await send_json(writer, http_status, {
            "job_id": job.public_id, "status": status,
            "error": job.error,
        })
        return http_status, True

    async def _handle_stream(self, request: Request, writer, params,
                             context) -> Tuple[int, bool]:
        job = self._get_job(params)
        registry = _metrics.get_registry()
        await start_sse(writer)
        writer.write(sse_event("hello", {
            "schema": STREAM_SCHEMA, "job_id": job.public_id,
            "trace_id": job.trace_id, "status": job.status,
        }))
        await writer.drain()
        if registry is not None:
            _streams_open(registry).inc()
        events_written = 0
        try:
            async for event, data in job.journal.tail():
                writer.write(sse_event(event, data))
                await writer.drain()
                events_written += 1
        finally:
            if registry is not None:
                _streams_open(registry).dec()
                _stream_events_total(registry).inc(events_written)
        return 200, False
