"""Wire formats for job submission and results.

A ``POST /v1/jobs`` body is one JSON object in one of two shapes:

**Compiled-problem submission** — raw binary-model terms::

    {"problem": {"kind": "qubo", "num_variables": 4,
                 "linear": {"0": -1.0}, "quadratic": [[0, 1, 2.0]],
                 "offset": 0.0},
     "solver": "sa", "config": {"num_sweeps": 200, "seed": 7}}

**Pipeline-workload submission** — a generated join-order instance run
through :class:`~repro.pipeline.OptimizationPipeline`::

    {"workload": {"topologies": ["chain"], "sizes": [6],
                  "seed": 11, "index": 0, "formulation": "joinorder"},
     "solver": "sa", "config": {"seed": 7}}

Either shape accepts ``solver``, ``config``, ``repair``, ``priority``,
``deadline`` and a free-form ``tag``. The tag participates in the
idempotency key but **not** in the solve, so clients resubmit the same
problem under a fresh job id (which still hits the result cache —
idempotency and caching are deliberately separate layers).

Idempotency keys are content-addressed: the sha256 of the canonical
JSON body (sorted keys, minimal separators), truncated to 32 hex
chars for the public job id. Two byte-different bodies that parse to
the same JSON value land on the same job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..annealing.ising import IsingModel
from ..annealing.qubo import QUBO
from ..compile.dispatch import SolveResult, SolverConfig
from ..compile.ir import CompiledProblem, VariableRegistry
from ..pipeline.plan import json_safe
from .http import HttpError


class PayloadError(HttpError):
    """A submission body the server cannot act on (HTTP 400)."""

    def __init__(self, message: str):
        super().__init__(400, message)


#: Keys accepted at the top level of a submission body.
_SUBMISSION_KEYS = {"problem", "workload", "solver", "config", "repair",
                    "priority", "deadline", "tag"}
_PROBLEM_KEYS = {"kind", "name", "num_variables", "num_spins", "linear",
                 "quadratic", "h", "j", "offset"}
_CONFIG_KEYS = {"num_sweeps", "num_reads", "seed", "convergence",
                "options"}
_WORKLOAD_KEYS = {"topologies", "sizes", "instances_per_cell", "seed",
                  "index", "formulation"}


def canonical_body(body: Any) -> bytes:
    """The canonical JSON encoding idempotency keys are hashed over."""
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def idempotency_key(body: Any) -> str:
    """Content-addressed public job id (32 hex chars) for a body."""
    return hashlib.sha256(canonical_body(body)).hexdigest()[:32]


# -- picklable problem hooks ----------------------------------------------
# Process-mode workers and the shared-memory model store require
# picklable problems, so the hooks are classes/functions at module
# scope, never closures.

def decode_bits(bits: Any) -> Tuple[int, ...]:
    """The generic decoder: the raw assignment as a bit tuple."""
    return tuple(int(b) for b in np.asarray(bits).reshape(-1))


def always_feasible(solution: Any) -> bool:
    """Raw-model submissions carry no domain constraints."""
    return True


class ModelEnergy:
    """Picklable score hook: the model's own energy function."""

    __slots__ = ("model",)

    def __init__(self, model: Any):
        self.model = model

    def __call__(self, solution: Any) -> float:
        bits = np.asarray(solution, dtype=float).reshape(1, -1)
        if isinstance(self.model, QUBO):
            return float(self.model.energies(bits)[0])
        spins = 2.0 * bits - 1.0
        return float(self.model.energies(spins)[0])


def _coerce_terms(value: Any, what: str) -> Dict[int, float]:
    """``{"0": -1.0}`` or ``[[0, -1.0], ...]`` -> ``{0: -1.0}``."""
    if value is None:
        return {}
    items: List[Tuple[Any, Any]]
    if isinstance(value, dict):
        items = list(value.items())
    elif isinstance(value, list):
        items = []
        for entry in value:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise PayloadError(
                    f"{what} entries must be [index, coefficient] pairs")
            items.append((entry[0], entry[1]))
    else:
        raise PayloadError(f"{what} must be an object or a pair list")
    terms: Dict[int, float] = {}
    for raw_index, raw_value in items:
        try:
            index = int(raw_index)
            coefficient = float(raw_value)
        except (TypeError, ValueError):
            raise PayloadError(
                f"{what} has non-numeric entry "
                f"[{raw_index!r}, {raw_value!r}]") from None
        terms[index] = terms.get(index, 0.0) + coefficient
    return terms


def _coerce_pairs(value: Any, what: str) -> List[Tuple[int, int, float]]:
    """``[[u, v, c], ...]`` (or ``{"u,v": c}``) -> triple list."""
    if value is None:
        return []
    triples: List[Tuple[int, int, float]] = []
    if isinstance(value, dict):
        entries = []
        for key, coefficient in value.items():
            parts = str(key).replace(",", " ").split()
            if len(parts) != 2:
                raise PayloadError(
                    f"{what} object keys must look like 'u,v', "
                    f"got {key!r}")
            entries.append((parts[0], parts[1], coefficient))
    elif isinstance(value, list):
        entries = []
        for entry in value:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise PayloadError(
                    f"{what} entries must be [u, v, coefficient] triples")
            entries.append(tuple(entry))
    else:
        raise PayloadError(f"{what} must be a triple list or an object")
    for raw_u, raw_v, raw_c in entries:
        try:
            triples.append((int(raw_u), int(raw_v), float(raw_c)))
        except (TypeError, ValueError):
            raise PayloadError(
                f"{what} has non-numeric triple "
                f"[{raw_u!r}, {raw_v!r}, {raw_c!r}]") from None
    return triples


def build_problem(spec: Any) -> CompiledProblem:
    """A submission's ``problem`` object -> :class:`CompiledProblem`."""
    if not isinstance(spec, dict):
        raise PayloadError("problem must be a JSON object")
    unknown = set(spec) - _PROBLEM_KEYS
    if unknown:
        raise PayloadError(
            f"unknown problem keys: {', '.join(sorted(unknown))}")
    kind = spec.get("kind", "qubo")
    if kind not in ("qubo", "ising"):
        raise PayloadError(
            f"problem kind must be 'qubo' or 'ising', got {kind!r}")
    try:
        offset = float(spec.get("offset", 0.0))
    except (TypeError, ValueError):
        raise PayloadError("offset must be a number") from None

    if kind == "qubo":
        linear = _coerce_terms(spec.get("linear"), "linear")
        quadratic = _coerce_pairs(spec.get("quadratic"), "quadratic")
        declared = spec.get("num_variables")
        highest = max(
            [index for index in linear] +
            [max(u, v) for u, v, _ in quadratic] + [-1])
        num_variables = (int(declared) if declared is not None
                         else highest + 1)
        if num_variables < 1:
            raise PayloadError("problem declares no variables")
        if highest >= num_variables:
            raise PayloadError(
                f"term index {highest} out of range for "
                f"{num_variables} variables")
        model: Any = QUBO(num_variables, offset=offset)
        for index, coefficient in linear.items():
            model.add_linear(index, coefficient)
        for u, v, coefficient in quadratic:
            if u == v:
                model.add_linear(u, coefficient)
            else:
                model.add_quadratic(u, v, coefficient)
    else:
        h = _coerce_terms(spec.get("h"), "h")
        j = _coerce_pairs(spec.get("j"), "j")
        declared = spec.get("num_spins", spec.get("num_variables"))
        highest = max([index for index in h] +
                      [max(u, v) for u, v, _ in j] + [-1])
        num_spins = int(declared) if declared is not None else highest + 1
        if num_spins < 1:
            raise PayloadError("problem declares no spins")
        if highest >= num_spins:
            raise PayloadError(
                f"term index {highest} out of range for "
                f"{num_spins} spins")
        couplings = {}
        for u, v, coefficient in j:
            if u == v:
                raise PayloadError("j couplings must link distinct spins")
            key = (min(u, v), max(u, v))
            couplings[key] = couplings.get(key, 0.0) + coefficient
        model = IsingModel(num_spins, h=h, j=couplings, offset=offset)

    variables = VariableRegistry()
    for index in range(model.num_variables
                       if kind == "qubo" else model.num_spins):
        variables.add("x", index)
    name = spec.get("name") or f"http_{kind}"
    if not isinstance(name, str):
        raise PayloadError("problem name must be a string")
    return CompiledProblem(
        name=name,
        model=model,
        variables=variables,
        decode=decode_bits,
        score=ModelEnergy(model),
        feasible=always_feasible,
        metadata={"source": "http", "kind": kind},
    )


def build_config(spec: Any) -> SolverConfig:
    if spec is None:
        return SolverConfig()
    if not isinstance(spec, dict):
        raise PayloadError("config must be a JSON object")
    unknown = set(spec) - _CONFIG_KEYS
    if unknown:
        raise PayloadError(
            f"unknown config keys: {', '.join(sorted(unknown))}")
    try:
        return SolverConfig(**spec)
    except (TypeError, ValueError) as exc:
        raise PayloadError(f"bad config: {exc}") from None


@dataclass
class Submission:
    """A parsed, validated ``POST /v1/jobs`` body."""

    kind: str  # "problem" | "workload"
    solver: str
    config: SolverConfig
    repair: bool
    priority: int
    deadline: Optional[float]
    tag: Optional[str]
    problem: Optional[CompiledProblem] = None
    workload_spec: Dict[str, Any] = field(default_factory=dict)


def parse_submission(body: Any) -> Submission:
    """Validate a request body into a :class:`Submission` (400 on any
    shape problem; solver-name validation happens in the service)."""
    if not isinstance(body, dict):
        raise PayloadError("submission must be a JSON object")
    unknown = set(body) - _SUBMISSION_KEYS
    if unknown:
        raise PayloadError(
            f"unknown submission keys: {', '.join(sorted(unknown))}")
    has_problem = "problem" in body
    has_workload = "workload" in body
    if has_problem == has_workload:
        raise PayloadError(
            "submission needs exactly one of 'problem' or 'workload'")

    solver = body.get("solver", "sa")
    if not isinstance(solver, str):
        raise PayloadError("solver must be a registry name string")
    config = build_config(body.get("config"))
    repair = bool(body.get("repair", False))
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise PayloadError("priority must be an integer")
    deadline = body.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise PayloadError("deadline must be a number") from None
        if deadline <= 0:
            raise PayloadError("deadline must be positive")
    tag = body.get("tag")
    if tag is not None and not isinstance(tag, (str, int)):
        raise PayloadError("tag must be a string or integer")

    if has_problem:
        return Submission(
            kind="problem", solver=solver, config=config, repair=repair,
            priority=priority, deadline=deadline, tag=tag,
            problem=build_problem(body["problem"]),
        )

    spec = body["workload"]
    if not isinstance(spec, dict):
        raise PayloadError("workload must be a JSON object")
    unknown = set(spec) - _WORKLOAD_KEYS
    if unknown:
        raise PayloadError(
            f"unknown workload keys: {', '.join(sorted(unknown))}")
    return Submission(
        kind="workload", solver=solver, config=config, repair=repair,
        priority=priority, deadline=deadline, tag=tag,
        workload_spec=dict(spec),
    )


def problem_payload(problem: CompiledProblem) -> Dict[str, Any]:
    """The inverse of :func:`build_problem`: a compiled problem's model
    as a submission ``problem`` object (benchmarks and tests replay
    real compiled workloads over HTTP with it)."""
    model = problem.model
    if isinstance(model, QUBO):
        return {
            "kind": "qubo",
            "name": problem.name,
            "num_variables": model.num_variables,
            "offset": model.offset,
            "linear": {str(k): v for k, v in sorted(model.linear.items())},
            "quadratic": [[u, v, c] for (u, v), c
                          in sorted(model.quadratic.items())],
        }
    return {
        "kind": "ising",
        "name": problem.name,
        "num_spins": model.num_spins,
        "offset": model.offset,
        "h": {str(k): v for k, v in sorted(model.h.items())},
        "j": [[u, v, c] for (u, v), c in sorted(model.j.items())],
    }


def result_document(result: SolveResult) -> Dict[str, Any]:
    """A :class:`SolveResult` as the JSON document clients receive.

    Floats round-trip exactly through JSON (shortest-repr encoding),
    so equality of two result documents is the bit-for-bit parity
    check the HTTP tests and the soak bench rely on.
    """
    return {
        "problem": result.problem,
        "solver": result.solver,
        "solution": json_safe(result.solution),
        "feasible": bool(result.feasible),
        "energy": float(result.energy),
        "energies": [float(value) for value in result.energies],
        "num_reads": int(len(result.samples)),
        "num_solutions": len(result.solutions),
        "config": json_safe(result.config.to_dict()),
        "provenance": json_safe(result.provenance),
        "convergence_rows": (len(result.convergence)
                             if result.convergence is not None else 0),
    }
