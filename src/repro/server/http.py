"""Minimal asyncio HTTP/1.1 plumbing for :mod:`repro.server`.

Hand-rolled on ``asyncio.start_server`` — the repo is stdlib-only by
charter, and the server needs exactly three things no framework is
worth importing for: request parsing with hard header/body caps,
keep-alive JSON responses with explicit ``Content-Length``, and
chunk-free server-sent-event streaming on a ``Connection: close``
response.

Requests flow ``read_request`` → :class:`Request`; responses flow
through :func:`send_json` / :func:`send_text` / :func:`start_sse` +
:func:`sse_event`. Handlers raise :class:`HttpError` for anything the
client did wrong; the connection loop turns it into a JSON error body.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for every status the server emits.
REASON_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Cap on the request line + headers block; past it the request is
#: rejected with 413 instead of buffering unboundedly.
MAX_HEADER_BYTES = 32 * 1024
#: Cap on a request body (submissions are QUBO term lists; 8 MiB is
#: orders of magnitude above any real workload spec).
MAX_BODY_BYTES = 8 * 1024 * 1024

_ALLOWED_METHODS = {"GET", "POST", "HEAD", "DELETE", "PUT", "OPTIONS"}


class HttpError(Exception):
    """A client- or server-caused failure with an HTTP status.

    Raised by parsers and route handlers; the connection loop renders
    it as a JSON error document. ``headers`` lets backpressure paths
    attach ``Retry-After``.
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Mapping[str, str]] = None,
                 body_extra: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.body_extra = dict(body_extra or {})

    def body(self) -> Dict[str, Any]:
        document = {"error": self.message, "status": self.status}
        document.update(self.body_extra)
        return document


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    #: Filled by the dispatcher: the route template the path matched
    #: (e.g. ``/v1/jobs/{id}``) — the low-cardinality metrics label.
    route: str = field(default="", compare=False)

    def json(self) -> Any:
        """The request body parsed as JSON (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None

    @property
    def tenant(self) -> str:
        """Quota identity: the ``X-Tenant`` header, else ``"default"``."""
        return self.headers.get("x-tenant", "default").strip() or "default"

    def wants_keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        return "close" not in connection


async def read_request(reader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed or oversized requests and
    lets transport exceptions (reset, incomplete read mid-body)
    propagate to the connection loop.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request headers too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")

    try:
        text = head.decode("iso-8859-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 total
        raise HttpError(400, "undecodable request head") from None
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if method not in _ALLOWED_METHODS:
        raise HttpError(501, f"method {method!r} not implemented")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(
                400, f"bad Content-Length: {length_header!r}") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies not supported")

    return Request(method=method, target=target, path=path,
                   query=query, headers=headers, body=body)


def render_response(status: int, body: bytes, *,
                    content_type: str = "application/json",
                    headers: Optional[Mapping[str, str]] = None,
                    keep_alive: bool = True) -> bytes:
    reason = REASON_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("iso-8859-1") + body


async def send_json(writer, status: int, payload: Any, *,
                    headers: Optional[Mapping[str, str]] = None,
                    keep_alive: bool = True) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    writer.write(render_response(status, body, headers=headers,
                                 keep_alive=keep_alive))
    await writer.drain()


async def send_text(writer, status: int, text: str, *,
                    content_type: str = "text/plain; charset=utf-8",
                    headers: Optional[Mapping[str, str]] = None,
                    keep_alive: bool = True) -> None:
    writer.write(render_response(status, text.encode("utf-8"),
                                 content_type=content_type,
                                 headers=headers, keep_alive=keep_alive))
    await writer.drain()


async def start_sse(writer) -> None:
    """Open a server-sent-events response.

    No ``Content-Length`` — the stream ends when the connection
    closes, so the response pins ``Connection: close``.
    """
    head = (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-cache\r\n"
        "Connection: close\r\n"
        "X-Accel-Buffering: no\r\n"
        "\r\n"
    )
    writer.write(head.encode("iso-8859-1"))
    await writer.drain()


def sse_event(event: str, data: Any) -> bytes:
    """One ``repro-stream/v1`` SSE frame (single-line JSON data)."""
    payload = json.dumps(data, sort_keys=True)
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")
