"""Classical-data-to-quantum-state encodings.

The tutorial's foundations section presents four standard encodings,
all implemented here behind one interface:

* :class:`BasisEncoding` — bit strings to computational basis states.
* :class:`AngleEncoding` — one feature per qubit as a rotation angle.
* :class:`IQPEncoding` — diagonal-interaction feature map (the circuit
  family behind quantum-kernel methods), with repeatable depth.
* :class:`AmplitudeEncoding` — ``2**n`` features in state amplitudes,
  prepared with the Möttönen uniformly-controlled-rotation scheme.

Every encoding builds a bound :class:`~repro.quantum.Circuit` from a
feature vector via :meth:`Encoding.circuit`, and can also return the
encoded statevector directly via :meth:`Encoding.state` (simulated by
default, exact for amplitude encoding).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from ..quantum.circuit import Circuit
from ..quantum.statevector import StatevectorSimulator


class Encoding(ABC):
    """Interface: a fixed-width feature map from R^d to n-qubit states."""

    #: number of classical features consumed per data point
    num_features: int
    #: number of qubits in the encoded state
    num_qubits: int

    @abstractmethod
    def circuit(self, x: Sequence[float]) -> Circuit:
        """Bound circuit preparing ``|phi(x)>`` from ``|0...0>``."""

    def state(self, x: Sequence[float]) -> np.ndarray:
        """The encoded statevector (default: simulate the circuit)."""
        return StatevectorSimulator().run(self.circuit(x))

    def state_batch(self, X: np.ndarray) -> np.ndarray:
        """Encoded statevectors for every row of X, ``(batch, 2**n)``.

        The default implementation routes all rows through
        :meth:`StatevectorSimulator.run_batch`, which vectorizes the
        whole batch in one pass whenever the encoding emits structurally
        identical circuits (angle and IQP encodings do). Subclasses with
        a closed form override this entirely.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("state_batch needs at least one data point")
        circuits = [self.circuit(x) for x in X]
        return StatevectorSimulator().run_batch(circuits)

    def _validate(self, x: Sequence[float]) -> np.ndarray:
        vec = np.asarray(x, dtype=float).reshape(-1)
        if vec.size != self.num_features:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_features} "
                f"features, got {vec.size}"
            )
        return vec


class BasisEncoding(Encoding):
    """Encode a bit vector as the matching computational basis state."""

    def __init__(self, num_bits: int):
        if num_bits < 1:
            raise ValueError("num_bits must be positive")
        self.num_features = num_bits
        self.num_qubits = num_bits

    def circuit(self, x: Sequence[float]) -> Circuit:
        bits = self._validate(x)
        if not np.isin(bits, (0.0, 1.0)).all():
            raise ValueError("basis encoding requires 0/1 features")
        qc = Circuit(self.num_qubits)
        for qubit, bit in enumerate(bits):
            if bit == 1.0:
                qc.x(qubit)
        return qc

    def state_batch(self, X: np.ndarray) -> np.ndarray:
        """Closed form: one-hot rows at each bit pattern's index."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("state_batch needs at least one data point")
        if X.shape[1] != self.num_features:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_features} "
                f"features, got {X.shape[1]}"
            )
        if not np.isin(X, (0.0, 1.0)).all():
            raise ValueError("basis encoding requires 0/1 features")
        weights = 1 << np.arange(self.num_qubits - 1, -1, -1)
        indices = (X.astype(int) * weights).sum(axis=1)
        states = np.zeros((X.shape[0], 2 ** self.num_qubits), dtype=complex)
        states[np.arange(X.shape[0]), indices] = 1.0
        return states


class AngleEncoding(Encoding):
    """One feature per qubit: ``R(x_i)`` on qubit i, optional CX chain.

    Parameters
    ----------
    num_features:
        Number of features = number of qubits.
    rotation:
        Which rotation axis carries the data: ``"rx"``, ``"ry"``
        or ``"rz"`` (``rz`` is preceded by an H so the data is not a
        global phase).
    entangle:
        If true, append a nearest-neighbour CX chain after the
        rotations, giving the encoded states entanglement structure.
    scaling:
        Features are multiplied by this factor before use; the common
        choice pi keeps [0, 1]-normalized data within one period.
    """

    _ROTATIONS = ("rx", "ry", "rz")

    def __init__(self, num_features: int, rotation: str = "ry",
                 entangle: bool = False, scaling: float = 1.0):
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if rotation not in self._ROTATIONS:
            raise ValueError(f"rotation must be one of {self._ROTATIONS}")
        self.num_features = num_features
        self.num_qubits = num_features
        self.rotation = rotation
        self.entangle = entangle
        self.scaling = float(scaling)

    def circuit(self, x: Sequence[float]) -> Circuit:
        vec = self._validate(x) * self.scaling
        qc = Circuit(self.num_qubits)
        for qubit, value in enumerate(vec):
            if self.rotation == "rz":
                qc.h(qubit)
            qc.append(self.rotation, [qubit], [float(value)])
        if self.entangle:
            for qubit in range(self.num_qubits - 1):
                qc.cx(qubit, qubit + 1)
        return qc


class IQPEncoding(Encoding):
    """Instantaneous-quantum-polynomial feature map.

    Each repetition applies H on every qubit, single-qubit phases
    ``RZ(scaling * x_i)`` and pairwise interactions
    ``RZZ(scaling * x_i * x_j)`` on neighbouring (or all) pairs. This is
    the feature-map family conjectured hard to simulate classically and
    is the default kernel circuit in experiment E3.
    """

    def __init__(self, num_features: int, depth: int = 2,
                 full_entanglement: bool = False, scaling: float = 1.0):
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.num_features = num_features
        self.num_qubits = num_features
        self.depth = depth
        self.full_entanglement = full_entanglement
        self.scaling = float(scaling)

    def _pairs(self) -> Sequence[Tuple[int, int]]:
        n = self.num_qubits
        if self.full_entanglement:
            return [(i, j) for i in range(n) for j in range(i + 1, n)]
        return [(i, i + 1) for i in range(n - 1)]

    def circuit(self, x: Sequence[float]) -> Circuit:
        vec = self._validate(x) * self.scaling
        qc = Circuit(self.num_qubits)
        for _ in range(self.depth):
            for qubit in range(self.num_qubits):
                qc.h(qubit)
            for qubit, value in enumerate(vec):
                qc.rz(float(value), qubit)
            for a, b in self._pairs():
                qc.rzz(float(vec[a] * vec[b]), a, b)
        return qc


class AmplitudeEncoding(Encoding):
    """Pack up to ``2**n`` real features into state amplitudes.

    The input vector is zero-padded to the next power of two and
    normalized; signs are preserved. :meth:`circuit` emits the Möttönen
    state-preparation network (uniformly controlled RY rotations
    decomposed into single-qubit RY and CX via the Gray-code walk),
    while :meth:`state` returns the exact amplitudes directly.
    """

    def __init__(self, num_features: int):
        if num_features < 2:
            raise ValueError("amplitude encoding needs >= 2 features")
        self.num_features = num_features
        self.num_qubits = max(1, math.ceil(math.log2(num_features)))

    def state(self, x: Sequence[float]) -> np.ndarray:
        vec = self._validate(x)
        padded = np.zeros(2 ** self.num_qubits)
        padded[: vec.size] = vec
        norm = np.linalg.norm(padded)
        if norm == 0:
            raise ValueError("cannot amplitude-encode the zero vector")
        return (padded / norm).astype(complex)

    def state_batch(self, X: np.ndarray) -> np.ndarray:
        """Closed form: pad and normalize all rows in one pass."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            raise ValueError("state_batch needs at least one data point")
        if X.shape[1] != self.num_features:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_features} "
                f"features, got {X.shape[1]}"
            )
        padded = np.zeros((X.shape[0], 2 ** self.num_qubits))
        padded[:, : X.shape[1]] = X
        norms = np.linalg.norm(padded, axis=1, keepdims=True)
        if (norms == 0).any():
            raise ValueError("cannot amplitude-encode the zero vector")
        return (padded / norms).astype(complex)

    def circuit(self, x: Sequence[float]) -> Circuit:
        amplitudes = self.state(x).real
        return mottonen_state_preparation(amplitudes)


def mottonen_state_preparation(amplitudes: Sequence[float]) -> Circuit:
    """Exact state preparation for a real amplitude vector.

    Implements Möttönen et al. (2004): a cascade of uniformly
    controlled RY rotations, one per qubit level, each decomposed into
    ``2**k`` plain RY rotations interleaved with CX gates following the
    Gray code. Handles arbitrary signs; requires a normalized vector of
    power-of-two length.
    """
    amps = np.asarray(amplitudes, dtype=float).reshape(-1)
    n = int(round(math.log2(amps.size)))
    if 2 ** n != amps.size:
        raise ValueError("amplitude vector length must be a power of two")
    if not math.isclose(float(np.linalg.norm(amps)), 1.0, abs_tol=1e-9):
        raise ValueError("amplitude vector must be normalized")
    qc = Circuit(max(n, 1))
    if n == 0:
        return qc
    for level in range(n):
        alphas = _rotation_angles(amps, level, n)
        _apply_uniformly_controlled_ry(
            qc, alphas, controls=list(range(level)), target=level
        )
    return qc


def _rotation_angles(amps: np.ndarray, level: int, n: int) -> np.ndarray:
    """RY angles for one tree level of the Möttönen construction.

    At ``level`` the vector is viewed as ``2**level`` blocks; each block
    splits into a left and right half and the angle steers the norm from
    left to right. Signs are resolved at the leaf level (blocks of 2)
    via ``atan2``, which is what makes negative amplitudes exact.
    """
    num_blocks = 2 ** level
    block = amps.size // num_blocks
    half = block // 2
    angles = np.zeros(num_blocks)
    for b in range(num_blocks):
        left = amps[b * block: b * block + half]
        right = amps[b * block + half: (b + 1) * block]
        if half == 1:
            angles[b] = 2.0 * math.atan2(float(right[0]), float(left[0]))
        else:
            norm_left = float(np.linalg.norm(left))
            norm_right = float(np.linalg.norm(right))
            angles[b] = 2.0 * math.atan2(norm_right, norm_left)
    return angles


def _apply_uniformly_controlled_ry(qc: Circuit, alphas: np.ndarray,
                                   controls: Sequence[int],
                                   target: int) -> None:
    """Multiplexed RY: rotation ``alphas[pattern]`` for each control
    pattern, decomposed into RY/CX pairs along the Gray-code walk."""
    k = len(controls)
    if k == 0:
        if abs(alphas[0]) > 1e-12:
            qc.ry(float(alphas[0]), target)
        return
    thetas = _multiplex_angles(alphas)
    for i, theta in enumerate(thetas):
        if abs(theta) > 1e-12:
            qc.ry(float(theta), target)
        # The CX after step i sits on the control where gray(i) and
        # gray(i+1) differ; the last one wraps to close the cycle.
        change = _gray_change_position(i, k)
        qc.cx(controls[change], target)


def _multiplex_angles(alphas: np.ndarray) -> np.ndarray:
    """Solve ``M theta = alpha`` for the Gray-code multiplexer, where
    ``M[b, i] = (-1)^{b . gray(i)}``; M is orthogonal up to 2**k."""
    size = alphas.size
    m = np.empty((size, size))
    for b in range(size):
        for i in range(size):
            g = i ^ (i >> 1)
            m[b, i] = (-1.0) ** bin(b & g).count("1")
    return m.T @ alphas / size


def _gray_change_position(step: int, k: int) -> int:
    """Control index whose bit flips between gray(step) and gray(step+1).

    Returns an index into the controls list, with bit 0 = last control
    (least significant in the pattern). The final step (step == 2**k-1)
    flips the most significant bit, closing the Gray cycle.
    """
    if step == 2 ** k - 1:
        return 0
    lsb = (step + 1) & -(step + 1)
    bit = lsb.bit_length() - 1
    return k - 1 - bit
