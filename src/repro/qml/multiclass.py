"""One-vs-rest multiclass wrapper for binary variational classifiers.

The tutorial's models are binary; real database classification tasks
(e.g. plan-choice prediction) often are not. This wrapper trains one
binary :class:`~repro.qml.models.VariationalClassifier` per class and
predicts by the largest decision margin — the standard OvR reduction.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from .models import VariationalClassifier


class OneVsRestVariationalClassifier:
    """Multiclass classification from per-class binary VQCs.

    Parameters
    ----------
    classifier_factory:
        Zero-argument callable building a fresh (unfitted) binary
        classifier per class; defaults to a small angle-encoded VQC
        sized at fit time.
    """

    def __init__(self,
                 classifier_factory: Optional[
                     Callable[[], VariationalClassifier]] = None):
        self.classifier_factory = classifier_factory
        self._classifiers: List[VariationalClassifier] = []
        self.classes_: Optional[np.ndarray] = None
        self._num_features: Optional[int] = None

    def _make_classifier(self) -> VariationalClassifier:
        if self.classifier_factory is not None:
            return self.classifier_factory()
        return VariationalClassifier(self._num_features, num_layers=2,
                                     epochs=20, seed=0)

    def fit(self, X: np.ndarray,
            y: np.ndarray) -> "OneVsRestVariationalClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValueError("need at least two classes")
        self._num_features = X.shape[1]
        self._classifiers = []
        for label in self.classes_:
            binary_targets = (y == label).astype(int)
            clf = self._make_classifier()
            clf.fit(X, binary_targets)
            self._classifiers.append(clf)
        return self

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-class margins, shape (n_samples, n_classes).

        Each column is that class's binary score oriented so larger
        means 'more this class'.
        """
        if not self._classifiers:
            raise RuntimeError("classifier is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        columns = []
        for clf in self._classifiers:
            margins = clf.decision_function(X)
            # The binary model's positive class is its classes_[1];
            # orient so 'this label' is positive.
            if clf.classes_[1] != 1:
                margins = -margins
            columns.append(margins)
        return np.column_stack(columns)

    def predict(self, X: np.ndarray) -> np.ndarray:
        margins = self.decision_matrix(X)
        return self.classes_[np.argmax(margins, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())
