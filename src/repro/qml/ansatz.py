"""Variational circuit ansätze (trainable circuit templates).

Each builder returns ``(circuit, parameters)`` where the circuit is
symbolic and the parameter list is in binding order. These are the
trainable halves of the VQC models; the encodings in
:mod:`repro.qml.encoding` provide the data halves.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..quantum.circuit import Circuit, Parameter, parameter_vector

AnsatzResult = Tuple[Circuit, List[Parameter]]


def hardware_efficient_ansatz(num_qubits: int, num_layers: int,
                              rotations: Sequence[str] = ("ry", "rz"),
                              entangler: str = "cx",
                              prefix: str = "theta") -> AnsatzResult:
    """The NISQ workhorse: per-qubit rotations + linear entangling chain.

    Each layer applies the listed rotation gates to every qubit (one
    fresh parameter each) followed by a CX/CZ chain over neighbours.
    Parameter count: ``num_layers * num_qubits * len(rotations)``.
    """
    _check_args(num_qubits, num_layers)
    if entangler not in ("cx", "cz"):
        raise ValueError("entangler must be 'cx' or 'cz'")
    for gate in rotations:
        if gate not in ("rx", "ry", "rz"):
            raise ValueError(f"unsupported rotation {gate!r}")
    count = num_layers * num_qubits * len(rotations)
    params = parameter_vector(prefix, count)
    qc = Circuit(num_qubits)
    index = 0
    for _ in range(num_layers):
        for qubit in range(num_qubits):
            for gate in rotations:
                qc.append(gate, [qubit], [params[index]])
                index += 1
        if num_qubits > 1:
            for qubit in range(num_qubits - 1):
                qc.append(entangler, [qubit, qubit + 1])
    return qc, params


def strongly_entangling_ansatz(num_qubits: int, num_layers: int,
                               prefix: str = "theta") -> AnsatzResult:
    """PennyLane-style strongly entangling layers.

    Each layer: a full RZ-RY-RZ Euler rotation per qubit, then a ring of
    CX gates with layer-dependent range ``r = 1 + (layer mod (n-1))``,
    which mixes information across the register faster than a linear
    chain. Parameter count: ``3 * num_layers * num_qubits``.
    """
    _check_args(num_qubits, num_layers)
    params = parameter_vector(prefix, 3 * num_layers * num_qubits)
    qc = Circuit(num_qubits)
    index = 0
    for layer in range(num_layers):
        for qubit in range(num_qubits):
            qc.rz(params[index], qubit)
            qc.ry(params[index + 1], qubit)
            qc.rz(params[index + 2], qubit)
            index += 3
        if num_qubits > 1:
            reach = 1 + layer % (num_qubits - 1) if num_qubits > 2 else 1
            for qubit in range(num_qubits):
                qc.cx(qubit, (qubit + reach) % num_qubits)
    return qc, params


def two_local_ansatz(num_qubits: int, num_layers: int,
                     prefix: str = "theta") -> AnsatzResult:
    """RY rotations with trainable RZZ couplings between neighbours.

    A natural ansatz for Ising-flavoured problems; parameter count:
    ``num_layers * (num_qubits + max(num_qubits - 1, 0))`` plus a final
    rotation layer.
    """
    _check_args(num_qubits, num_layers)
    per_layer = num_qubits + max(num_qubits - 1, 0)
    params = parameter_vector(prefix, num_layers * per_layer + num_qubits)
    qc = Circuit(num_qubits)
    index = 0
    for _ in range(num_layers):
        for qubit in range(num_qubits):
            qc.ry(params[index], qubit)
            index += 1
        for qubit in range(num_qubits - 1):
            qc.rzz(params[index], qubit, qubit + 1)
            index += 1
    for qubit in range(num_qubits):
        qc.ry(params[index], qubit)
        index += 1
    return qc, params


ANSATZ_BUILDERS = {
    "hardware_efficient": hardware_efficient_ansatz,
    "strongly_entangling": strongly_entangling_ansatz,
    "two_local": two_local_ansatz,
}


def build_ansatz(name: str, num_qubits: int, num_layers: int,
                 prefix: str = "theta") -> AnsatzResult:
    """Look up an ansatz builder by name."""
    try:
        builder = ANSATZ_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown ansatz {name!r}; choose from {sorted(ANSATZ_BUILDERS)}"
        ) from None
    return builder(num_qubits, num_layers, prefix=prefix)


def _check_args(num_qubits: int, num_layers: int) -> None:
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    if num_layers < 1:
        raise ValueError("num_layers must be positive")
