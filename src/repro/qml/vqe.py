"""Variational quantum eigensolver.

Minimizes ``<psi(theta)| H |psi(theta)>`` over a parameterized ansatz —
the gate-model route to ground states that complements QAOA (which it
generalizes: QAOA is VQE with a problem-structured ansatz). In the
database context this solves the same Ising-encoded optimization
problems as the annealers in :mod:`repro.annealing`, so results can be
cross-checked across all three solver families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..quantum.operators import PauliSum, PauliString
from ..quantum.statevector import StatevectorSimulator
from .ansatz import build_ansatz
from .gradients import parameter_shift_gradient
from .optimizers import Adam, Optimizer


@dataclass
class VQEResult:
    """Outcome of a VQE run."""

    eigenvalue: float
    optimal_parameters: np.ndarray
    history: List[float]
    nfev: int

    def __repr__(self) -> str:
        return (f"VQEResult(eigenvalue={self.eigenvalue:.6g}, "
                f"nfev={self.nfev})")


class VQE:
    """Ground-state solver over a trainable ansatz.

    Parameters
    ----------
    num_qubits:
        Register width; must match the Hamiltonian.
    ansatz:
        Name from :data:`repro.qml.ansatz.ANSATZ_BUILDERS`.
    num_layers:
        Ansatz depth.
    optimizer:
        Any :class:`repro.qml.optimizers.Optimizer`; Adam by default.
    restarts:
        Independent random restarts; the best run wins (variational
        landscapes have local minima).
    """

    def __init__(self, num_qubits: int,
                 ansatz: str = "hardware_efficient",
                 num_layers: int = 2,
                 optimizer: Optional[Optimizer] = None,
                 max_iter: int = 120, restarts: int = 2,
                 seed: Optional[int] = 0):
        if restarts < 1:
            raise ValueError("restarts must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be positive")
        self.num_qubits = num_qubits
        self.max_iter = max_iter
        self.restarts = restarts
        self.optimizer = optimizer or Adam(learning_rate=0.1)
        self._rng = np.random.default_rng(seed)
        self._sim = StatevectorSimulator(seed=seed)
        self._circuit, self._params = build_ansatz(
            ansatz, num_qubits, num_layers
        )

    @property
    def num_parameters(self) -> int:
        return len(self._params)

    def compute_minimum_eigenvalue(
            self, hamiltonian: Union[PauliSum, PauliString]) -> VQEResult:
        """Minimize the Hamiltonian expectation; returns the best run."""
        if isinstance(hamiltonian, PauliString):
            hamiltonian = PauliSum([hamiltonian])
        if hamiltonian.num_qubits != self.num_qubits:
            raise ValueError(
                f"Hamiltonian acts on {hamiltonian.num_qubits} qubits, "
                f"solver is configured for {self.num_qubits}"
            )

        def energy(values: np.ndarray) -> float:
            bound = self._circuit.bind(dict(zip(self._params, values)))
            return self._sim.expectation(bound, hamiltonian)

        def gradient(values: np.ndarray) -> np.ndarray:
            return parameter_shift_gradient(
                self._circuit, hamiltonian, values, simulator=self._sim
            )

        best: Optional[VQEResult] = None
        total_nfev = 0
        for _ in range(self.restarts):
            x0 = self._rng.uniform(-0.5, 0.5, size=self.num_parameters)
            result = self.optimizer.minimize(
                energy, x0, gradient=gradient, max_iter=self.max_iter
            )
            total_nfev += result.nfev
            candidate = VQEResult(
                eigenvalue=result.fun,
                optimal_parameters=result.x,
                history=result.history,
                nfev=total_nfev,
            )
            if best is None or candidate.eigenvalue < best.eigenvalue:
                best = candidate
        return best

    def optimal_state(self, result: VQEResult) -> np.ndarray:
        """Statevector at the optimized parameters."""
        bound = self._circuit.bind(
            dict(zip(self._params, result.optimal_parameters))
        )
        return self._sim.run(bound)
