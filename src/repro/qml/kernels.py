"""Quantum kernel methods.

A quantum kernel scores similarity between data points through the
geometry of their encoded quantum states:

* :class:`FidelityQuantumKernel` — ``K(x, z) = |<phi(x)|phi(z)>|^2``,
  computed exactly from the encoded statevectors.
* :class:`ProjectedQuantumKernel` — a Gaussian kernel over the vector
  of single-qubit reduced density matrices of the encoded state, the
  Huang et al. construction that stays informative as qubit counts grow.
* :class:`QuantumKernelClassifier` — an SVM (from
  :mod:`repro.baselines.svm`) over a precomputed quantum Gram matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import telemetry
from ..baselines.svm import SVM
from .encoding import Encoding, IQPEncoding


class FidelityQuantumKernel:
    """State-overlap kernel for a given data encoding.

    With ``shots=None`` entries are computed exactly from statevector
    overlaps. With a finite ``shots`` budget each entry is estimated
    through the *inversion test* — run ``phi(z)`` then ``phi(x)^dag``
    and count how often the register reads all zeros — which is how
    the kernel is measured on hardware, shot noise included.
    """

    def __init__(self, encoding: Encoding, shots: Optional[int] = None,
                 seed: Optional[int] = None):
        if not isinstance(encoding, Encoding):
            raise TypeError("encoding must be an Encoding")
        if shots is not None and shots < 1:
            raise ValueError("shots must be positive or None")
        self.encoding = encoding
        self.shots = shots
        self._rng = np.random.default_rng(seed)

    def encoded_states(self, X: np.ndarray) -> np.ndarray:
        """Matrix of encoded statevectors, one row per data point.

        All rows are simulated in one batched pass
        (:meth:`Encoding.state_batch`), so building a Gram matrix costs
        O(1) simulator calls instead of one per data point.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self.encoding.state_batch(X)

    def __call__(self, X: np.ndarray,
                 Z: Optional[np.ndarray] = None) -> np.ndarray:
        """Gram matrix between rows of X and rows of Z (default X)."""
        with telemetry.span("qml.kernel.gram"):
            states_x = self.encoded_states(X)
            states_z = states_x if Z is None else self.encoded_states(Z)
            overlaps = states_x @ states_z.conj().T
            exact = np.abs(overlaps) ** 2
            telemetry.count("qml.kernel_entries", exact.size)
            if self.shots is None:
                return exact
            telemetry.count("quantum.shots", self.shots * exact.size)
            symmetric = Z is None
            return self._sampled_gram(exact, symmetric)

    def _sampled_gram(self, exact: np.ndarray,
                      symmetric: bool) -> np.ndarray:
        """Binomial shot noise on every inversion-test estimate.

        One vectorized ``rng.binomial`` draw covers the whole matrix
        (upper triangle only when symmetric, mirrored down and with an
        exact unit diagonal, matching the inversion test on identical
        states).
        """
        probabilities = np.clip(exact, 0.0, 1.0)
        if not symmetric:
            hits = self._rng.binomial(self.shots, probabilities)
            return hits / self.shots
        rows = exact.shape[0]
        upper = np.triu_indices(rows, k=1)
        sampled = np.ones_like(exact)
        sampled[upper] = (
            self._rng.binomial(self.shots, probabilities[upper]) / self.shots
        )
        sampled[(upper[1], upper[0])] = sampled[upper]
        return sampled

    def evaluate(self, x: Sequence[float], z: Sequence[float]) -> float:
        """Single kernel entry ``K(x, z)``."""
        return float(self(np.atleast_2d(x), np.atleast_2d(z))[0, 0])


class ProjectedQuantumKernel:
    """RBF kernel over single-qubit marginal features of encoded states.

    Feature vector: for each qubit, the Z-basis marginal probability of
    reading 1 (a cheap, shot-estimable proxy for the reduced density
    matrix diagonal), concatenated across qubits. ``gamma`` controls
    the Gaussian bandwidth.
    """

    def __init__(self, encoding: Encoding, gamma: float = 1.0):
        if not isinstance(encoding, Encoding):
            raise TypeError("encoding must be an Encoding")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.encoding = encoding
        self.gamma = float(gamma)

    def features(self, X: np.ndarray) -> np.ndarray:
        """Projected features: per-qubit P(1) for each data point.

        Encodes the whole batch in one simulator pass, then reads every
        single-qubit marginal off the probability tensor directly.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = self.encoding.num_qubits
        states = self.encoding.state_batch(X)
        probs = (np.abs(states) ** 2).reshape((X.shape[0],) + (2,) * n)
        feats = np.empty((X.shape[0], n))
        for q in range(n):
            axes = tuple(a for a in range(1, n + 1) if a != q + 1)
            feats[:, q] = probs.sum(axis=axes)[:, 1]
        return feats

    def __call__(self, X: np.ndarray,
                 Z: Optional[np.ndarray] = None) -> np.ndarray:
        with telemetry.span("qml.kernel.projected_gram"):
            feats_x = self.features(X)
            feats_z = feats_x if Z is None else self.features(Z)
            sq = ((feats_x[:, None, :]
                   - feats_z[None, :, :]) ** 2).sum(axis=2)
            telemetry.count("qml.kernel_entries", sq.size)
            return np.exp(-self.gamma * sq)


def kernel_target_alignment(gram: np.ndarray, y: np.ndarray) -> float:
    """Normalized alignment between a Gram matrix and the label kernel.

    ``A = <K, yy^T> / (||K|| * ||yy^T||)`` with labels in -1/+1. Values
    near 1 mean the kernel already separates the classes; it is the
    standard cheap predictor of quantum-kernel usefulness.
    """
    gram = np.asarray(gram, dtype=float)
    y = np.asarray(y).reshape(-1)
    if gram.shape != (y.size, y.size):
        raise ValueError("gram must be square and match y")
    signs = np.where(y == np.unique(y)[-1], 1.0, -1.0)
    target = np.outer(signs, signs)
    numerator = float((gram * target).sum())
    denominator = float(
        np.linalg.norm(gram) * np.linalg.norm(target)
    )
    if denominator == 0:
        raise ValueError("degenerate gram matrix")
    return numerator / denominator


class QuantumKernelClassifier:
    """SVM over a precomputed quantum kernel.

    Parameters
    ----------
    kernel:
        A quantum kernel object (callable Gram builder). Defaults to a
        fidelity kernel over a depth-2 IQP encoding sized at fit time.
    C:
        SVM soft-margin penalty.
    """

    def __init__(self, kernel=None, C: float = 1.0,
                 seed: Optional[int] = 0):
        self.kernel = kernel
        self.C = C
        self.seed = seed
        self._svm: Optional[SVM] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuantumKernelClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.kernel is None:
            self.kernel = FidelityQuantumKernel(
                IQPEncoding(X.shape[1], depth=2)
            )
        self._train_X = X
        gram = self.kernel(X)
        self._svm = SVM(kernel="precomputed", C=self.C, seed=self.seed)
        self._svm.fit(gram, y)
        return self

    def _test_gram(self, X: np.ndarray) -> np.ndarray:
        if self._svm is None:
            raise RuntimeError("classifier is not fitted")
        return self.kernel(np.atleast_2d(np.asarray(X, dtype=float)),
                           self._train_X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        gram = self._test_gram(X)
        return self._svm.decision_function(gram)

    def predict(self, X: np.ndarray) -> np.ndarray:
        gram = self._test_gram(X)
        return self._svm.predict(gram)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())
