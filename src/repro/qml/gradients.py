"""Gradients of circuit expectation values.

The exact two-term parameter-shift rule applies to every gate of the
form ``exp(-i theta G / 2)`` with ``G^2 = I`` (all rx/ry/rz/rxx/ryy/rzz
gates in this library): for such a gate,

    d<O>/d(theta) = ( <O>(theta + pi/2) - <O>(theta - pi/2) ) / 2

When a circuit parameter feeds several gate occurrences, or enters a
gate through an affine expression ``s * theta + o``, the chain rule
sums the per-occurrence shift terms scaled by ``s``. Gates outside the
shift-rule family (``p``, ``cp``, ``u3``, controlled rotations) fall
back to central finite differences.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..quantum.circuit import (
    Circuit,
    Instruction,
    Parameter,
    ParameterExpression,
)
from ..quantum.gates import SHIFT_RULE_GATES
from ..quantum.statevector import StatevectorSimulator

_SHIFT = math.pi / 2.0
_FD_EPS = 1e-6


def expectation_function(circuit: Circuit, observable,
                         simulator: Optional[StatevectorSimulator] = None
                         ) -> Callable[[Sequence[float]], float]:
    """Close over a symbolic circuit: values -> ``<O>``.

    Parameter order follows ``circuit.parameters``.
    """
    sim = simulator or StatevectorSimulator()
    params = circuit.parameters

    def evaluate(values: Sequence[float]) -> float:
        bound = circuit.bind(dict(zip(params, values)))
        return sim.expectation(bound, observable)

    return evaluate


def parameter_shift_gradient(circuit: Circuit, observable,
                             values: Sequence[float],
                             simulator: Optional[StatevectorSimulator] = None
                             ) -> np.ndarray:
    """Exact gradient of ``<O>`` w.r.t. every circuit parameter.

    Cost: two circuit evaluations per shift-rule gate occurrence of
    each parameter (the hardware-realistic gradient the tutorial
    teaches). All shifted circuits differ from the bound circuit only
    in one angle value, so the whole set is evaluated in a single
    :meth:`StatevectorSimulator.run_batch` call.
    """
    sim = simulator or StatevectorSimulator()
    params = circuit.parameters
    values = list(values)
    if len(values) != len(params):
        raise ValueError(
            f"expected {len(params)} values, got {len(values)}"
        )
    binding = dict(zip(params, values))
    bound = circuit.bind(binding)
    telemetry.count("qml.gradient_evaluations")
    gradient = np.zeros(len(params))
    shifted: List[Circuit] = []
    weights: List[tuple] = []  # (parameter index, chain-rule weight)
    for k, param in enumerate(params):
        for position, inst in enumerate(circuit.instructions):
            scale = _occurrence_scale(inst, param)
            if scale is None:
                continue
            if inst.name in SHIFT_RULE_GATES:
                shift, factor = _SHIFT, 0.5
            else:
                shift, factor = _FD_EPS, 0.5 / _FD_EPS
            shifted.append(_with_shifted_angle(bound, position, +shift))
            weights.append((k, scale * factor))
            shifted.append(_with_shifted_angle(bound, position, -shift))
            weights.append((k, -scale * factor))
    if not shifted:
        return gradient
    obs = _as_pauli_sum(observable)
    with telemetry.span("qml.parameter_shift"):
        states = sim.run_batch(shifted)
        for (k, weight), state in zip(weights, states):
            gradient[k] += weight * obs.expectation(state,
                                                    circuit.num_qubits)
    return gradient


def _as_pauli_sum(observable):
    from ..quantum.operators import PauliString, PauliSum

    if isinstance(observable, PauliString):
        return PauliSum([observable])
    if not isinstance(observable, PauliSum):
        raise TypeError(
            "observable must be a PauliString or PauliSum, "
            f"got {type(observable).__name__}"
        )
    return observable


def _occurrence_scale(inst: Instruction, param: Parameter) -> Optional[float]:
    """d(gate angle)/d(param) for this occurrence, or None if absent.

    Only single-parameter gates participate (multi-parameter gates such
    as u3 are handled by the full finite-difference fallback in
    :func:`finite_difference_gradient` and are rejected here).
    """
    for p in inst.params:
        if isinstance(p, Parameter) and p is param:
            if len(inst.params) != 1:
                raise ValueError(
                    f"gate {inst.name!r} has multiple parameters; use "
                    "finite_difference_gradient"
                )
            return 1.0
        if isinstance(p, ParameterExpression) and p.parameter is param:
            if len(inst.params) != 1:
                raise ValueError(
                    f"gate {inst.name!r} has multiple parameters; use "
                    "finite_difference_gradient"
                )
            return p.scale
    return None


def _with_shifted_angle(bound: Circuit, position: int,
                        shift: float) -> Circuit:
    """Copy of a fully bound circuit with one gate angle shifted."""
    out = Circuit(bound.num_qubits)
    out.instructions = list(bound.instructions)
    inst = out.instructions[position]
    (angle,) = inst.params
    out.instructions[position] = Instruction(
        inst.name, inst.qubits, (float(angle) + shift,)
    )
    return out


def finite_difference_gradient(function: Callable[[Sequence[float]], float],
                               values: Sequence[float],
                               epsilon: float = 1e-6) -> np.ndarray:
    """Central finite differences for any scalar function of a vector."""
    values = np.asarray(values, dtype=float)
    gradient = np.zeros_like(values)
    for k in range(values.size):
        forward = values.copy()
        backward = values.copy()
        forward[k] += epsilon
        backward[k] -= epsilon
        gradient[k] = (function(forward) - function(backward)) / (2 * epsilon)
    return gradient
