"""QUBO feature selection (mutual-information relevance/redundancy).

A machine-learning preprocessing problem with a natural quadratic
structure, repeatedly proposed for quantum annealers: choose ``k`` of
``d`` features maximizing relevance to the label while minimizing
pairwise redundancy,

    maximize  sum_i I(f_i; y) x_i  -  alpha * sum_{i<j} I(f_i; f_j) x_i x_j
    s.t.      sum_i x_i = k,

with mutual information ``I`` estimated from histograms. The
cardinality constraint becomes the usual quadratic penalty. Baselines:
greedy mRMR and exact enumeration.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..annealing.qubo import QUBO
from ..annealing.simulated_annealing import SimulatedAnnealingSolver


def mutual_information(x: np.ndarray, y: np.ndarray,
                       bins: int = 8) -> float:
    """Histogram estimate of ``I(X; Y)`` in nats.

    Continuous inputs are discretized into equal-width bins; already
    discrete inputs with few values keep their support.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    y = np.asarray(y, dtype=float).reshape(-1)
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    if x.size == 0:
        raise ValueError("empty inputs")
    x_codes = _discretize(x, bins)
    y_codes = _discretize(y, bins)
    joint, _, _ = np.histogram2d(
        x_codes, y_codes,
        bins=(x_codes.max() + 1, y_codes.max() + 1),
    )
    joint = joint / joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = joint[mask] / (px @ py)[mask]
    return float((joint[mask] * np.log(ratio)).sum())


def _discretize(values: np.ndarray, bins: int) -> np.ndarray:
    unique = np.unique(values)
    if unique.size <= bins:
        codes = np.searchsorted(unique, values)
        return codes.astype(int)
    edges = np.linspace(values.min(), values.max(), bins + 1)
    codes = np.clip(np.digitize(values, edges[1:-1]), 0, bins - 1)
    return codes.astype(int)


@dataclass
class FeatureSelectionProblem:
    """Precomputed relevance/redundancy scores for a dataset."""

    relevance: np.ndarray              # I(f_i; y), shape (d,)
    redundancy: np.ndarray             # I(f_i; f_j), shape (d, d)
    num_selected: int                  # the cardinality k

    def __post_init__(self):
        self.relevance = np.asarray(self.relevance, dtype=float)
        self.redundancy = np.asarray(self.redundancy, dtype=float)
        d = self.relevance.size
        if self.redundancy.shape != (d, d):
            raise ValueError("redundancy must be d x d")
        if not 1 <= self.num_selected <= d:
            raise ValueError("num_selected must be in [1, d]")

    @property
    def num_features(self) -> int:
        return self.relevance.size

    def objective(self, selection: Sequence[int],
                  alpha: float = 1.0) -> float:
        """Relevance minus alpha-weighted redundancy of a subset."""
        chosen = sorted(set(selection))
        value = float(sum(self.relevance[i] for i in chosen))
        for a_pos, i in enumerate(chosen):
            for j in chosen[a_pos + 1:]:
                value -= alpha * float(self.redundancy[i, j])
        return value

    @classmethod
    def from_data(cls, X: np.ndarray, y: np.ndarray, num_selected: int,
                  bins: int = 8) -> "FeatureSelectionProblem":
        """Estimate all scores from a dataset."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y).reshape(-1)
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        d = X.shape[1]
        relevance = np.array([
            mutual_information(X[:, i], y, bins=bins) for i in range(d)
        ])
        redundancy = np.zeros((d, d))
        for i in range(d):
            for j in range(i + 1, d):
                value = mutual_information(X[:, i], X[:, j], bins=bins)
                redundancy[i, j] = value
                redundancy[j, i] = value
        return cls(relevance=relevance, redundancy=redundancy,
                   num_selected=num_selected)


class FeatureSelectionQUBO:
    """QUBO compiler with a cardinality-k penalty."""

    def __init__(self, problem: FeatureSelectionProblem,
                 alpha: float = 1.0, penalty_scale: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if penalty_scale <= 0:
            raise ValueError("penalty_scale must be positive")
        self.problem = problem
        self.alpha = alpha
        self.penalty_scale = penalty_scale
        self.num_variables = problem.num_features
        self._qubo: Optional[QUBO] = None

    def penalty_weight(self) -> float:
        """Exceeds the best possible swing from one extra feature."""
        best = float(self.problem.relevance.max(initial=0.0))
        return self.penalty_scale * (best + 1.0)

    def build(self) -> QUBO:
        if self._qubo is not None:
            return self._qubo
        problem = self.problem
        d = problem.num_features
        k = problem.num_selected
        qubo = QUBO(d)
        for i in range(d):
            qubo.add_linear(i, -float(problem.relevance[i]))
            for j in range(i + 1, d):
                if problem.redundancy[i, j]:
                    qubo.add_quadratic(
                        i, j, self.alpha * float(problem.redundancy[i, j])
                    )
        # Penalty A (sum x_i - k)^2.
        weight = self.penalty_weight()
        for i in range(d):
            qubo.add_linear(i, weight * (1.0 - 2.0 * k))
            for j in range(i + 1, d):
                qubo.add_quadratic(i, j, 2.0 * weight)
        qubo.add_offset(weight * k * k)
        self._qubo = qubo
        return qubo

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Bits -> exactly-k feature subset (repair by relevance)."""
        bits = np.asarray(bits).reshape(-1)
        if bits.size != self.num_variables:
            raise ValueError(
                f"expected {self.num_variables} bits, got {bits.size}"
            )
        selection = [i for i in range(self.num_variables) if bits[i] == 1]
        k = self.problem.num_selected
        by_relevance = np.argsort(-self.problem.relevance)
        while len(selection) > k:
            worst = min(selection,
                        key=lambda i: self.problem.relevance[i])
            selection.remove(worst)
        for candidate in by_relevance:
            if len(selection) >= k:
                break
            if candidate not in selection:
                selection.append(int(candidate))
        return sorted(selection)


def select_features_exact(problem: FeatureSelectionProblem,
                          alpha: float = 1.0) -> Tuple[List[int], float]:
    """Best k-subset by enumeration (d choose k; small d only)."""
    best_subset: List[int] = []
    best_value = -math.inf
    for subset in itertools.combinations(range(problem.num_features),
                                         problem.num_selected):
        value = problem.objective(subset, alpha=alpha)
        if value > best_value:
            best_value = value
            best_subset = list(subset)
    return best_subset, best_value


def select_features_greedy(problem: FeatureSelectionProblem,
                           alpha: float = 1.0) -> Tuple[List[int], float]:
    """Greedy mRMR: repeatedly add the best marginal feature."""
    selection: List[int] = []
    remaining = set(range(problem.num_features))
    while len(selection) < problem.num_selected:
        best_candidate = None
        best_gain = -math.inf
        current = problem.objective(selection, alpha=alpha)
        for candidate in sorted(remaining):
            gain = problem.objective(selection + [candidate],
                                     alpha=alpha) - current
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        selection.append(best_candidate)
        remaining.discard(best_candidate)
    return sorted(selection), problem.objective(selection, alpha=alpha)


def select_features_annealing(problem: FeatureSelectionProblem,
                              alpha: float = 1.0, solver=None,
                              penalty_scale: float = 1.0,
                              polish: bool = True
                              ) -> Tuple[List[int], float]:
    """Compile to QUBO, anneal, decode the best read.

    ``polish`` runs a single-swap hill climb on the decoded subset —
    the same hybrid refinement pattern as the join-order pipeline,
    recovering reads stuck one swap from the optimum.
    """
    compiler = FeatureSelectionQUBO(problem, alpha=alpha,
                                    penalty_scale=penalty_scale)
    qubo = compiler.build()
    if solver is None:
        # Competing subsets differ by small MI sums, so the default
        # budget is generous; these QUBOs are small (d variables).
        solver = SimulatedAnnealingSolver(num_sweeps=1000, num_reads=50,
                                          seed=0)
    samples = solver.solve(qubo)
    best_selection: List[int] = []
    best_value = -math.inf
    for sample in samples:
        selection = compiler.decode(sample.assignment)
        value = problem.objective(selection, alpha=alpha)
        if value > best_value:
            best_value = value
            best_selection = selection
    if polish:
        best_selection = swap_polish(problem, best_selection, alpha=alpha)
        best_value = problem.objective(best_selection, alpha=alpha)
    return best_selection, best_value


def swap_polish(problem: FeatureSelectionProblem,
                selection: Sequence[int],
                alpha: float = 1.0) -> List[int]:
    """Hill-climb by swapping one selected feature for one unselected
    feature until no swap improves the objective."""
    current = sorted(set(selection))
    current_value = problem.objective(current, alpha=alpha)
    improved = True
    while improved:
        improved = False
        outside = [i for i in range(problem.num_features)
                   if i not in current]
        for position, inside in enumerate(list(current)):
            for candidate in outside:
                trial = list(current)
                trial[position] = candidate
                value = problem.objective(trial, alpha=alpha)
                if value > current_value + 1e-12:
                    current = sorted(trial)
                    current_value = value
                    improved = True
                    break
            if improved:
                break
    return current
