"""Barren-plateau diagnostics.

McClean et al. showed that for sufficiently deep random parameterized
circuits, the variance of any cost-gradient component vanishes
exponentially in the qubit count — the central trainability obstacle
the tutorial warns database researchers about. This module measures
that variance empirically for the library's own ansätze (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..quantum.operators import PauliSum, zz, single_z
from ..quantum.statevector import StatevectorSimulator
from .ansatz import build_ansatz
from .gradients import parameter_shift_gradient


@dataclass
class GradientStatistics:
    """Sampled gradient statistics for one (qubits, depth) setting."""

    num_qubits: int
    depth: int
    num_samples: int
    mean: float
    variance: float
    samples: List[float]


def sample_gradient_component(num_qubits: int, depth: int,
                              num_samples: int = 50,
                              ansatz: str = "hardware_efficient",
                              component: int = 0,
                              observable: Optional[PauliSum] = None,
                              seed: Optional[int] = None
                              ) -> GradientStatistics:
    """Sample one gradient component at random parameter points.

    The observable defaults to ``Z_0 Z_1`` (a typical local cost term;
    for one qubit it falls back to ``Z_0``). Returns mean and variance
    of ``dE / d(theta_component)`` over uniformly random parameters.
    """
    if num_samples < 2:
        raise ValueError("need at least two samples for a variance")
    circuit, params = build_ansatz(ansatz, num_qubits, depth)
    if component < 0 or component >= len(params):
        raise ValueError(
            f"component must index the {len(params)} ansatz parameters"
        )
    if observable is None:
        if num_qubits >= 2:
            observable = PauliSum([zz(0, 1, num_qubits)])
        else:
            observable = PauliSum([single_z(0, num_qubits)])
    rng = np.random.default_rng(seed)
    sim = StatevectorSimulator()
    samples: List[float] = []
    for _ in range(num_samples):
        values = rng.uniform(0, 2 * np.pi, size=len(params))
        gradient = parameter_shift_gradient(
            circuit, observable, values, simulator=sim
        )
        samples.append(float(gradient[component]))
    data = np.asarray(samples)
    return GradientStatistics(
        num_qubits=num_qubits,
        depth=depth,
        num_samples=num_samples,
        mean=float(data.mean()),
        variance=float(data.var()),
        samples=samples,
    )


def variance_scan(qubit_range: Sequence[int], depth: int = 4,
                  num_samples: int = 50,
                  ansatz: str = "hardware_efficient",
                  seed: Optional[int] = None) -> List[GradientStatistics]:
    """Gradient variance for each qubit count; E4's data series.

    A barren plateau shows as ``variance ~ b ** (-n)`` with ``b > 1``.
    """
    rng = np.random.default_rng(seed)
    return [
        sample_gradient_component(
            n, depth, num_samples=num_samples, ansatz=ansatz,
            seed=int(rng.integers(2 ** 31)),
        )
        for n in qubit_range
    ]


def exponential_decay_rate(scan: Sequence[GradientStatistics]) -> float:
    """Fit ``log(variance) = a - rate * n``; returns the decay rate.

    A positive rate confirms exponential suppression with qubit count.
    """
    if len(scan) < 2:
        raise ValueError("need at least two scan points")
    ns = np.array([s.num_qubits for s in scan], dtype=float)
    variances = np.array([max(s.variance, 1e-300) for s in scan])
    slope, _ = np.polyfit(ns, np.log(variances), 1)
    return float(-slope)
