"""Optimizers for variational quantum circuits.

Gradient-based (GD, momentum, Adam) and gradient-free / stochastic
(SPSA) optimizers behind one ``minimize`` interface. SPSA matters
because on hardware every gradient component costs circuit evaluations
and expectation values carry shot noise — it estimates the full
gradient from exactly two (noisy) function evaluations per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

Objective = Callable[[np.ndarray], float]
Gradient = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizeResult:
    """Outcome of an optimization run."""

    x: np.ndarray
    fun: float
    nit: int
    nfev: int
    history: List[float] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"OptimizeResult(fun={self.fun:.6g}, nit={self.nit}, "
            f"nfev={self.nfev})"
        )


class Optimizer:
    """Base class: subclasses implement :meth:`minimize`."""

    def minimize(self, function: Objective, x0: Sequence[float],
                 gradient: Optional[Gradient] = None,
                 max_iter: int = 100,
                 callback: Optional[Callable[[int, np.ndarray, float], None]]
                 = None) -> OptimizeResult:
        raise NotImplementedError


class GradientDescent(Optimizer):
    """Plain gradient descent with a fixed learning rate."""

    def __init__(self, learning_rate: float = 0.1):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    def minimize(self, function, x0, gradient=None, max_iter=100,
                 callback=None) -> OptimizeResult:
        if gradient is None:
            raise ValueError("GradientDescent requires a gradient")
        x = np.asarray(x0, dtype=float).copy()
        history: List[float] = []
        nfev = 0
        for iteration in range(max_iter):
            value = function(x)
            nfev += 1
            history.append(value)
            if callback is not None:
                callback(iteration, x, value)
            x = x - self.learning_rate * np.asarray(gradient(x))
        final = function(x)
        nfev += 1
        history.append(final)
        return OptimizeResult(x=x, fun=final, nit=max_iter, nfev=nfev,
                              history=history)


class Momentum(Optimizer):
    """Gradient descent with heavy-ball momentum."""

    def __init__(self, learning_rate: float = 0.1, momentum: float = 0.9):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum

    def minimize(self, function, x0, gradient=None, max_iter=100,
                 callback=None) -> OptimizeResult:
        if gradient is None:
            raise ValueError("Momentum requires a gradient")
        x = np.asarray(x0, dtype=float).copy()
        velocity = np.zeros_like(x)
        history: List[float] = []
        nfev = 0
        for iteration in range(max_iter):
            value = function(x)
            nfev += 1
            history.append(value)
            if callback is not None:
                callback(iteration, x, value)
            velocity = (self.momentum * velocity
                        - self.learning_rate * np.asarray(gradient(x)))
            x = x + velocity
        final = function(x)
        nfev += 1
        history.append(final)
        return OptimizeResult(x=x, fun=final, nit=max_iter, nfev=nfev,
                              history=history)


class Adam(Optimizer):
    """Adam: adaptive moments, the default trainer for the VQC models."""

    def __init__(self, learning_rate: float = 0.05, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon

    def minimize(self, function, x0, gradient=None, max_iter=100,
                 callback=None) -> OptimizeResult:
        if gradient is None:
            raise ValueError("Adam requires a gradient")
        x = np.asarray(x0, dtype=float).copy()
        m = np.zeros_like(x)
        v = np.zeros_like(x)
        history: List[float] = []
        nfev = 0
        for iteration in range(1, max_iter + 1):
            value = function(x)
            nfev += 1
            history.append(value)
            if callback is not None:
                callback(iteration - 1, x, value)
            g = np.asarray(gradient(x))
            m = self.beta1 * m + (1 - self.beta1) * g
            v = self.beta2 * v + (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1 ** iteration)
            v_hat = v / (1 - self.beta2 ** iteration)
            x = x - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
        final = function(x)
        nfev += 1
        history.append(final)
        return OptimizeResult(x=x, fun=final, nit=max_iter, nfev=nfev,
                              history=history)


class SPSA(Optimizer):
    """Simultaneous perturbation stochastic approximation.

    Estimates the gradient from two function evaluations regardless of
    dimension, using a random +-1 perturbation direction, with the
    classic Spall gain schedules ``a_k = a / (k + 1 + A)^alpha`` and
    ``c_k = c / (k + 1)^gamma``.
    """

    def __init__(self, a: float = 0.2, c: float = 0.1, alpha: float = 0.602,
                 gamma: float = 0.101, stability: float = 10.0,
                 seed: Optional[int] = None):
        if a <= 0 or c <= 0:
            raise ValueError("gains a and c must be positive")
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability
        self._rng = np.random.default_rng(seed)

    def minimize(self, function, x0, gradient=None, max_iter=100,
                 callback=None) -> OptimizeResult:
        # The supplied analytic gradient (if any) is deliberately
        # ignored: SPSA's whole point is gradient-free operation.
        x = np.asarray(x0, dtype=float).copy()
        history: List[float] = []
        nfev = 0
        for k in range(max_iter):
            ak = self.a / (k + 1 + self.stability) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = self._rng.choice((-1.0, 1.0), size=x.size)
            plus = function(x + ck * delta)
            minus = function(x - ck * delta)
            nfev += 2
            estimate = (plus - minus) / (2.0 * ck) * delta
            x = x - ak * estimate
            value = 0.5 * (plus + minus)
            history.append(value)
            if callback is not None:
                callback(k, x, value)
        final = function(x)
        nfev += 1
        history.append(final)
        return OptimizeResult(x=x, fun=final, nit=max_iter, nfev=nfev,
                              history=history)


OPTIMIZERS = {
    "gd": GradientDescent,
    "momentum": Momentum,
    "adam": Adam,
    "spsa": SPSA,
}


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Instantiate an optimizer by short name."""
    try:
        cls = OPTIMIZERS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; choose from {sorted(OPTIMIZERS)}"
        ) from None
    return cls(**kwargs)
