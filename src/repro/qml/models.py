"""Variational quantum models: classifier and regressor.

A model is ``encoding circuit (data) -> ansatz (weights) -> <Z_0>``,
trained by minimizing a squared loss with parameter-shift gradients.
This is the textbook VQC pipeline the tutorial presents, wrapped in the
familiar ``fit`` / ``predict`` estimator interface.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import telemetry
from ..quantum.circuit import Circuit
from ..quantum.operators import PauliSum, single_z
from ..quantum.measurement import expectation_with_shots
from ..quantum.statevector import StatevectorSimulator
from .ansatz import build_ansatz
from .encoding import AngleEncoding, Encoding
from .gradients import parameter_shift_gradient
from .optimizers import Adam, Optimizer, make_optimizer


class _VariationalModel:
    """Shared machinery for the classifier and regressor."""

    def __init__(self, encoding: Union[Encoding, int],
                 num_layers: int = 2,
                 ansatz: str = "hardware_efficient",
                 optimizer: Union[str, Optimizer, None] = None,
                 epochs: int = 30,
                 batch_size: Optional[int] = None,
                 shots: Optional[int] = None,
                 data_reuploads: int = 1,
                 seed: Optional[int] = 0):
        if isinstance(encoding, int):
            encoding = AngleEncoding(encoding, scaling=math.pi)
        if not isinstance(encoding, Encoding):
            raise TypeError("encoding must be an Encoding or a feature count")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        if data_reuploads < 1:
            raise ValueError("data_reuploads must be >= 1")
        self.encoding = encoding
        self.num_layers = num_layers
        self.ansatz_name = ansatz
        self.epochs = epochs
        self.batch_size = batch_size
        self.shots = shots
        self.data_reuploads = data_reuploads
        self._rng = np.random.default_rng(seed)
        self._sim = StatevectorSimulator(seed=seed)
        if optimizer is None:
            optimizer = Adam(learning_rate=0.1)
        elif isinstance(optimizer, str):
            optimizer = make_optimizer(optimizer)
        self.optimizer = optimizer

        self._template, self._weight_params = build_ansatz(
            ansatz, encoding.num_qubits, num_layers
        )
        self.num_weights = len(self._weight_params)
        self._observable = PauliSum([single_z(0, encoding.num_qubits)])
        self.weights_: Optional[np.ndarray] = None
        self.loss_history_: List[float] = []

    # ------------------------------------------------------------------
    def _full_circuit(self, x: Sequence[float]) -> Circuit:
        """Data-bound circuit with symbolic weights.

        With ``data_reuploads > 1`` the encoding block is interleaved
        with fresh copies of the ansatz layers (simple re-uploading).
        """
        data_circuit = self.encoding.circuit(x)
        full = data_circuit
        for _ in range(self.data_reuploads - 1):
            full = full.compose(self._template).compose(data_circuit)
        return full.compose(self._template)

    def _raw_output(self, x: Sequence[float],
                    weights: np.ndarray) -> float:
        telemetry.count("qml.circuit_evaluations")
        circuit = self._full_circuit(x).bind(
            dict(zip(self._weight_params, weights))
        )
        if self.shots is None:
            return self._sim.expectation(circuit, self._observable)
        return expectation_with_shots(
            circuit, self._observable, self.shots, rng=self._rng
        )

    def _batch_raw_outputs(self, rows: np.ndarray,
                           weights: np.ndarray) -> np.ndarray:
        """Exact outputs for many rows in one batched simulator pass.

        Falls back to the per-sample shot-based estimator when the
        model is configured with a finite shot budget.
        """
        if self.shots is not None:
            return np.array(
                [self._raw_output(x, weights) for x in rows]
            )
        binding = dict(zip(self._weight_params, weights))
        circuits = [self._full_circuit(x).bind(binding) for x in rows]
        telemetry.count("qml.circuit_evaluations", len(circuits))
        states = self._sim.run_batch(circuits)
        num_qubits = self.encoding.num_qubits
        return np.array([
            self._observable.expectation(state, num_qubits)
            for state in states
        ])

    def _raw_gradient(self, x: Sequence[float],
                      weights: np.ndarray) -> np.ndarray:
        circuit = self._full_circuit(x)
        # Parameter order in the composed circuit: weight params appear
        # in template order because the encoding is fully bound.
        return parameter_shift_gradient(
            circuit, self._observable, weights, simulator=self._sim
        )

    def _fit_targets(self, X: np.ndarray, targets: np.ndarray) -> None:
        """Minimize mean squared error between raw outputs and targets."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = X.shape[0]
        batch = min(self.batch_size or n, n)
        weights0 = self._rng.uniform(-0.1, 0.1, size=self.num_weights)
        state = {"weights": weights0}

        def batch_rows() -> np.ndarray:
            if batch >= n:
                return np.arange(n)
            return self._rng.choice(n, size=batch, replace=False)

        rows_holder = {"rows": batch_rows()}

        def loss(weights: np.ndarray) -> float:
            rows = rows_holder["rows"]
            outputs = self._batch_raw_outputs(X[rows], weights)
            return float(((outputs - targets[rows]) ** 2).mean())

        def gradient(weights: np.ndarray) -> np.ndarray:
            rows = rows_holder["rows"]
            grad = np.zeros(self.num_weights)
            for i in rows:
                output = self._raw_output(X[i], weights)
                grad += 2.0 * (output - targets[i]) * self._raw_gradient(
                    X[i], weights
                )
            return grad / rows.size

        def resample(iteration: int, weights: np.ndarray,
                     value: float) -> None:
            self.loss_history_.append(value)
            telemetry.record("qml.loss", value)
            rows_holder["rows"] = batch_rows()

        self.loss_history_ = []
        with telemetry.span("qml.fit"):
            result = self.optimizer.minimize(
                loss, weights0, gradient=gradient, max_iter=self.epochs,
                callback=resample,
            )
        state["weights"] = result.x
        self.weights_ = result.x

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise RuntimeError("model is not fitted; call fit first")

    def raw_outputs(self, X: np.ndarray) -> np.ndarray:
        """Model outputs ``<Z_0>`` in [-1, 1] for each row of X."""
        self._check_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return self._batch_raw_outputs(X, self.weights_)


class VariationalClassifier(_VariationalModel):
    """Binary classifier: sign of ``<Z_0>`` after the trained circuit.

    Labels may be any two values; they are mapped to -1/+1 internally.

    Examples
    --------
    >>> from repro.datasets import make_moons
    >>> X, y = make_moons(40, seed=1)
    >>> clf = VariationalClassifier(2, num_layers=2, epochs=5)
    >>> _ = clf.fit(X, y)
    >>> clf.predict(X[:3]).shape
    (3,)
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "VariationalClassifier":
        y = np.asarray(y).reshape(-1)
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        self.classes_ = np.unique(y)
        if self.classes_.size != 2:
            raise ValueError("classifier is binary; got "
                             f"{self.classes_.size} classes")
        targets = np.where(y == self.classes_[1], 1.0, -1.0)
        self._fit_targets(X, targets)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed score in [-1, 1]; positive means the second class."""
        return self.raw_outputs(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class, ``(1 + <Z>) / 2`` clipped."""
        return np.clip((1.0 + self.decision_function(X)) / 2.0, 0.0, 1.0)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return float((self.predict(X) == np.asarray(y).reshape(-1)).mean())


class VariationalRegressor(_VariationalModel):
    """Regressor: affinely rescaled ``<Z_0>`` output.

    The output range is calibrated from the training targets, so the
    circuit only has to learn the shape of the function on [-1, 1].
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "VariationalRegressor":
        y = np.asarray(y, dtype=float).reshape(-1)
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] != y.size:
            raise ValueError("X and y length mismatch")
        lo, hi = float(y.min()), float(y.max())
        if hi == lo:
            self._scale, self._offset = 1.0, lo
            targets = np.zeros_like(y)
        else:
            # Map targets into [-0.9, 0.9] to keep them reachable.
            self._scale = (hi - lo) / 1.8
            self._offset = (hi + lo) / 2.0
            targets = (y - self._offset) / self._scale
        self._fit_targets(X, targets)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.raw_outputs(X) * self._scale + self._offset

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=float).reshape(-1)
        predictions = self.predict(X)
        total = ((y - y.mean()) ** 2).sum()
        if total == 0:
            return 1.0
        return 1.0 - float(((y - predictions) ** 2).sum() / total)
