"""Quantum machine learning core.

Data encodings, variational ansätze, parameter-shift gradients,
optimizers, variational models, quantum kernels, and barren-plateau
diagnostics — the full foundations toolkit the tutorial teaches.
"""

from .ansatz import (
    ANSATZ_BUILDERS,
    build_ansatz,
    hardware_efficient_ansatz,
    strongly_entangling_ansatz,
    two_local_ansatz,
)
from .barren import (
    GradientStatistics,
    exponential_decay_rate,
    sample_gradient_component,
    variance_scan,
)
from .feature_selection import (
    FeatureSelectionProblem,
    FeatureSelectionQUBO,
    mutual_information,
    select_features_annealing,
    select_features_exact,
    select_features_greedy,
    swap_polish,
)
from .encoding import (
    AmplitudeEncoding,
    AngleEncoding,
    BasisEncoding,
    Encoding,
    IQPEncoding,
    mottonen_state_preparation,
)
from .gradients import (
    expectation_function,
    finite_difference_gradient,
    parameter_shift_gradient,
)
from .kernels import (
    FidelityQuantumKernel,
    ProjectedQuantumKernel,
    QuantumKernelClassifier,
    kernel_target_alignment,
)
from .models import VariationalClassifier, VariationalRegressor
from .multiclass import OneVsRestVariationalClassifier
from .vqe import VQE, VQEResult
from .optimizers import (
    SPSA,
    Adam,
    GradientDescent,
    Momentum,
    OptimizeResult,
    Optimizer,
    make_optimizer,
)

__all__ = [
    "ANSATZ_BUILDERS",
    "build_ansatz",
    "hardware_efficient_ansatz",
    "strongly_entangling_ansatz",
    "two_local_ansatz",
    "GradientStatistics",
    "exponential_decay_rate",
    "sample_gradient_component",
    "variance_scan",
    "FeatureSelectionProblem",
    "FeatureSelectionQUBO",
    "mutual_information",
    "select_features_annealing",
    "select_features_exact",
    "select_features_greedy",
    "swap_polish",
    "AmplitudeEncoding",
    "AngleEncoding",
    "BasisEncoding",
    "Encoding",
    "IQPEncoding",
    "mottonen_state_preparation",
    "expectation_function",
    "finite_difference_gradient",
    "parameter_shift_gradient",
    "FidelityQuantumKernel",
    "ProjectedQuantumKernel",
    "QuantumKernelClassifier",
    "kernel_target_alignment",
    "VariationalClassifier",
    "VariationalRegressor",
    "OneVsRestVariationalClassifier",
    "VQE",
    "VQEResult",
    "SPSA",
    "Adam",
    "GradientDescent",
    "Momentum",
    "OptimizeResult",
    "Optimizer",
    "make_optimizer",
]
