"""Content-addressed LRU cache of :class:`SolveResult` records.

The cache key is a stable digest of *everything that determines the
solver's output*: the problem's
:meth:`~repro.compile.CompiledProblem.content_key` (canonicalized QUBO
/ Ising terms — no ``id()`` or array ``repr`` leakage), the solver
registry name, the full resolved :class:`SolverConfig` (uniform knobs,
resolved convergence flag, backend options) and the seed. Seedless
configs are *uncacheable* by construction — two runs would legally
return different samples — and are counted as skips rather than
cached.

Two implementations share one interface:

* :class:`ResultCache` — a single lock over one LRU ``OrderedDict``;
  the right shape for the in-process service, where the dispatcher
  count bounds concurrency.
* :class:`ShardedResultCache` — N independently locked
  :class:`ResultCache` shards selected by key prefix. The HTTP front
  end (:mod:`repro.server`) reads the cache from many concurrent
  request handlers at once; sharding keeps hot hit-path lookups from
  serializing on a single lock. Per-shard statistics merge into one
  :meth:`~ShardedResultCache.stats` view.

Hits and misses are mirrored onto telemetry counters
(``service.cache.hits`` / ``.misses`` / ``.evictions`` / ``.skips``)
so cache effectiveness shows up in every report.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..compile.dispatch import SolverConfig
from ..compile.ir import CompiledProblem

#: Sentinel distinguishing "caller did not pre-fetch the registry"
#: from "caller fetched it and it was None (metrics off)".
_UNSET = object()


def _count_event(event: str, value: int = 1,
                 registry: Any = _UNSET) -> None:
    """Mirror one cache event onto both telemetry layers.

    The collector keeps its historical flat counters
    (``service.cache.<event>s``); the live-metrics registry gets the
    labeled form (``service_cache_events_total{event=...}``) the SLO
    rules and Prometheus exports consume.

    Cache methods fetch the registry guard **once per operation**
    (outside their lock) and pass it in, matching the cheap-when-off
    pattern of the service and solver layers — the previous shape
    re-fetched the registry on every event, inside the hot hit path.
    """
    telemetry.count(f"service.cache.{event}s", value)
    if registry is _UNSET:
        registry = _metrics.get_registry()
    if registry is not None:
        registry.counter(
            "service_cache_events_total",
            "result-cache lookup outcomes",
            ("event",)).labels(event=event).inc(value)


def cache_key(problem: CompiledProblem, solver: str,
              config: SolverConfig, repair: bool = False,
              problem_key: Optional[str] = None) -> Optional[str]:
    """Stable cache key, or ``None`` when the job is uncacheable.

    ``None`` (no seed) means the backend's RNG is nondeterministic
    across runs, so a cached result would silently change semantics.
    The convergence flag must already be resolved
    (:meth:`SolverConfig.resolve_convergence`) — it changes the
    result's ``convergence`` payload, so it is part of the key, as is
    ``repair``, which changes the returned best solution.
    ``problem_key`` lets a caller that already holds
    ``problem.content_key()`` (the service computes it once per
    submission for batching and the shared-memory store) pass it in
    instead of re-deriving it.
    """
    if config.seed is None:
        return None
    material = json.dumps(
        {
            "problem": problem_key or problem.content_key(),
            "solver": solver,
            "config": config.to_dict(),
            "repair": bool(repair),
        },
        sort_keys=True, default=repr,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded, thread-safe LRU mapping cache keys to results."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.skips = 0

    def get(self, key: Optional[str]) -> Optional[Any]:
        """Look up a key, refreshing its LRU position on a hit."""
        registry = _metrics.get_registry()
        if key is None:
            with self._lock:
                self.skips += 1
            _count_event("skip", registry=registry)
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            _count_event("miss", registry=registry)
        else:
            _count_event("hit", registry=registry)
        return entry

    def peek(self, key: Optional[str]) -> Optional[Any]:
        """Look up without touching hit/miss accounting or LRU order.

        The service peeks under its own submission lock and then calls
        :meth:`note_hit` / :meth:`note_miss` once it knows whether the
        submission became a cache hit, a coalesce, or a real job — so
        coalesced duplicates are not double-counted as misses.
        """
        if key is None:
            return None
        with self._lock:
            return self._entries.get(key)

    def note_hit(self, key: str) -> None:
        """Count a hit and refresh the entry's LRU position."""
        registry = _metrics.get_registry()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self.hits += 1
        _count_event("hit", registry=registry)

    def note_miss(self, key: Optional[str]) -> None:
        """Count a miss — or a skip, for uncacheable ``None`` keys."""
        registry = _metrics.get_registry()
        if key is None:
            with self._lock:
                self.skips += 1
            _count_event("skip", registry=registry)
            return
        with self._lock:
            self.misses += 1
        _count_event("miss", registry=registry)

    def put(self, key: Optional[str], result: Any) -> None:
        """Insert a result, evicting the least recently used past cap."""
        if key is None:
            return
        registry = _metrics.get_registry()
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            _count_event("eviction", evicted, registry=registry)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """Hit/miss/eviction statistics plus current occupancy."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "skips": self.skips,
                "hit_rate": (self.hits / total) if total else 0.0,
            }

    #: ``stats()`` is the merged-view name the sharded cache
    #: introduced; both classes answer it so callers need not care
    #: which implementation they hold.
    stats = snapshot


class ShardedResultCache:
    """N independently locked :class:`ResultCache` shards.

    The shard is picked from the leading hex of the (sha256) cache
    key, so well-distributed keys spread uniformly. Each shard runs
    its own LRU over ``ceil(max_entries / shards)`` slots — global
    capacity is preserved while evictions become shard-local, the
    standard trade of sharded LRUs.

    The interface is a drop-in for :class:`ResultCache` (``get`` /
    ``peek`` / ``note_hit`` / ``note_miss`` / ``put`` / ``clear`` /
    ``len`` / ``snapshot``), which is what lets
    :class:`~repro.service.SolveService` swap it in via its
    ``cache_shards`` knob without touching the submission path.
    """

    def __init__(self, max_entries: int = 256, shards: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if shards < 1:
            raise ValueError("shards must be positive")
        shards = min(shards, max_entries)
        per_shard = -(-max_entries // shards)  # ceil division
        self._shards: List[ResultCache] = [
            ResultCache(per_shard) for _ in range(shards)
        ]

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def max_entries(self) -> int:
        return sum(shard.max_entries for shard in self._shards)

    def _shard(self, key: str) -> ResultCache:
        """Key-prefix shard selection (keys are sha256 hex digests)."""
        try:
            bucket = int(key[:8], 16)
        except (ValueError, TypeError):
            bucket = hash(key)
        return self._shards[bucket % len(self._shards)]

    def get(self, key: Optional[str]) -> Optional[Any]:
        if key is None:
            return self._shards[0].get(None)
        return self._shard(key).get(key)

    def peek(self, key: Optional[str]) -> Optional[Any]:
        if key is None:
            return None
        return self._shard(key).peek(key)

    def note_hit(self, key: str) -> None:
        self._shard(key).note_hit(key)

    def note_miss(self, key: Optional[str]) -> None:
        if key is None:
            self._shards[0].note_miss(None)
            return
        self._shard(key).note_miss(key)

    def put(self, key: Optional[str], result: Any) -> None:
        if key is None:
            return
        self._shard(key).put(key, result)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    # -- merged statistics ---------------------------------------------
    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    @property
    def skips(self) -> int:
        return sum(shard.skips for shard in self._shards)

    def snapshot(self) -> Dict[str, Any]:
        """One merged stats view over every shard.

        Same keys as :meth:`ResultCache.snapshot` (so service stats
        and dashboards are implementation-agnostic) plus the shard
        count and the per-shard occupancy spread.
        """
        shard_views = [shard.snapshot() for shard in self._shards]
        hits = sum(view["hits"] for view in shard_views)
        misses = sum(view["misses"] for view in shard_views)
        total = hits + misses
        return {
            "entries": sum(view["entries"] for view in shard_views),
            "max_entries": self.max_entries,
            "hits": hits,
            "misses": misses,
            "evictions": sum(view["evictions"] for view in shard_views),
            "skips": sum(view["skips"] for view in shard_views),
            "hit_rate": (hits / total) if total else 0.0,
            "shards": len(self._shards),
            "shard_entries": [view["entries"] for view in shard_views],
        }

    stats = snapshot

    def __repr__(self) -> str:
        return (f"ShardedResultCache(shards={len(self._shards)}, "
                f"entries={len(self)}/{self.max_entries})")
