"""Content-addressed LRU cache of :class:`SolveResult` records.

The cache key is a stable digest of *everything that determines the
solver's output*: the problem's
:meth:`~repro.compile.CompiledProblem.content_key` (canonicalized QUBO
/ Ising terms — no ``id()`` or array ``repr`` leakage), the solver
registry name, the full resolved :class:`SolverConfig` (uniform knobs,
resolved convergence flag, backend options) and the seed. Seedless
configs are *uncacheable* by construction — two runs would legally
return different samples — and are counted as skips rather than
cached.

Hits and misses are mirrored onto telemetry counters
(``service.cache.hits`` / ``.misses`` / ``.evictions`` / ``.skips``)
so cache effectiveness shows up in every report.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..compile.dispatch import SolverConfig
from ..compile.ir import CompiledProblem


def _count_event(event: str, value: int = 1) -> None:
    """Mirror one cache event onto both telemetry layers.

    The collector keeps its historical flat counters
    (``service.cache.<event>s``); the live-metrics registry gets the
    labeled form (``service_cache_events_total{event=...}``) the SLO
    rules and Prometheus exports consume.
    """
    telemetry.count(f"service.cache.{event}s", value)
    registry = _metrics.get_registry()
    if registry is not None:
        registry.counter(
            "service_cache_events_total",
            "result-cache lookup outcomes",
            ("event",)).labels(event=event).inc(value)


def cache_key(problem: CompiledProblem, solver: str,
              config: SolverConfig, repair: bool = False,
              problem_key: Optional[str] = None) -> Optional[str]:
    """Stable cache key, or ``None`` when the job is uncacheable.

    ``None`` (no seed) means the backend's RNG is nondeterministic
    across runs, so a cached result would silently change semantics.
    The convergence flag must already be resolved
    (:meth:`SolverConfig.resolve_convergence`) — it changes the
    result's ``convergence`` payload, so it is part of the key, as is
    ``repair``, which changes the returned best solution.
    ``problem_key`` lets a caller that already holds
    ``problem.content_key()`` (the service computes it once per
    submission for batching and the shared-memory store) pass it in
    instead of re-deriving it.
    """
    if config.seed is None:
        return None
    material = json.dumps(
        {
            "problem": problem_key or problem.content_key(),
            "solver": solver,
            "config": config.to_dict(),
            "repair": bool(repair),
        },
        sort_keys=True, default=repr,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded, thread-safe LRU mapping cache keys to results."""

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.skips = 0

    def get(self, key: Optional[str]) -> Optional[Any]:
        """Look up a key, refreshing its LRU position on a hit."""
        if key is None:
            with self._lock:
                self.skips += 1
            _count_event("skip")
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            _count_event("miss")
        else:
            _count_event("hit")
        return entry

    def peek(self, key: Optional[str]) -> Optional[Any]:
        """Look up without touching hit/miss accounting or LRU order.

        The service peeks under its own submission lock and then calls
        :meth:`note_hit` / :meth:`note_miss` once it knows whether the
        submission became a cache hit, a coalesce, or a real job — so
        coalesced duplicates are not double-counted as misses.
        """
        if key is None:
            return None
        with self._lock:
            return self._entries.get(key)

    def note_hit(self, key: str) -> None:
        """Count a hit and refresh the entry's LRU position."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self.hits += 1
        _count_event("hit")

    def note_miss(self, key: Optional[str]) -> None:
        """Count a miss — or a skip, for uncacheable ``None`` keys."""
        if key is None:
            with self._lock:
                self.skips += 1
            _count_event("skip")
            return
        with self._lock:
            self.misses += 1
        _count_event("miss")

    def put(self, key: Optional[str], result: Any) -> None:
        """Insert a result, evicting the least recently used past cap."""
        if key is None:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
        if evicted:
            _count_event("eviction", evicted)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, Any]:
        """Hit/miss/eviction statistics plus current occupancy."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "skips": self.skips,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
