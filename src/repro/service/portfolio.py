"""Portfolio racing: several solvers, first feasible answer wins.

Heuristic solvers dominate each other unpredictably per instance —
simulated annealing wins flat landscapes, tabu wins rugged ones,
parallel tempering wins multimodal ones. A *portfolio* hedges: submit
the same problem to several registry solvers at once, return the first
feasible result that lands, and cancel the losers (queued losers are
withdrawn; running process-mode losers are reaped mid-flight).

Built entirely on public :class:`~repro.service.SolveService`
machinery: entrants are ordinary jobs, completion order is observed
through handle callbacks, and the winner's provenance is annotated
with the full race record (entrants, statuses, winner) so a portfolio
answer is as auditable as a single solve.
"""

from __future__ import annotations

import queue as _queue
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..compile.dispatch import SolveResult, SolverConfig
from ..compile.ir import CompiledProblem
from .queue import JobStatus

__all__ = ["PortfolioError", "race"]

#: One portfolio entrant: a solver name, optionally with its own config.
Entrant = Union[str, Tuple[str, Optional[SolverConfig]]]

#: Grace seconds added on top of the budget when waiting for racers.
_BUDGET_SLACK_SECONDS = 30.0


class PortfolioError(RuntimeError):
    """No portfolio entrant produced a usable result."""


def _normalize_entrants(solvers: Sequence[Entrant],
                        config: Optional[SolverConfig]
                        ) -> List[Tuple[str, Optional[SolverConfig]]]:
    entrants: List[Tuple[str, Optional[SolverConfig]]] = []
    for entry in solvers:
        if isinstance(entry, str):
            entrants.append((entry, config))
        elif isinstance(entry, tuple) and len(entry) == 2:
            entrants.append((entry[0], entry[1]))
        else:
            raise ValueError(
                "portfolio entrants are solver names or (name, config) "
                f"pairs, got {entry!r}"
            )
    if not entrants:
        raise ValueError("portfolio needs at least one entrant")
    return entrants


def race(service, problem: CompiledProblem,
         solvers: Sequence[Entrant] = ("sa", "tabu", "pt"),
         config: Optional[SolverConfig] = None,
         budget: Optional[float] = None,
         repair: bool = False, priority: int = 0) -> SolveResult:
    """Race ``solvers`` on ``problem``; first feasible result wins.

    Every entrant is submitted with ``deadline=budget`` (when given),
    so a wedged solver cannot stall the race. As soon as a feasible
    result lands, every other entrant is cancelled and reaped; the
    function then waits for the losers to reach a terminal state so no
    orphan workers outlive the call. If no entrant finds a feasible
    solution, the best-energy infeasible result is returned instead;
    if *nothing* completes, :class:`PortfolioError` carries each
    entrant's failure.

    The returned result is the winner's, with
    ``provenance["portfolio"]`` describing the whole race.
    """
    entrants = _normalize_entrants(solvers, config)
    completion: "_queue.Queue" = _queue.Queue()
    handles = []
    with telemetry.span("service.portfolio"):
        for solver, entrant_config in entrants:
            handle = service.submit(
                problem, solver, entrant_config, priority=priority,
                deadline=budget, repair=repair, block=True,
            )
            handle.add_done_callback(completion.put)
            handles.append(handle)
        telemetry.count("service.portfolio.races")

        wait_timeout = (None if budget is None
                        else budget * len(entrants)
                        + _BUDGET_SLACK_SECONDS)
        winner = None
        winner_result: Optional[SolveResult] = None
        completed: List[Tuple[Any, SolveResult]] = []
        pending = len(handles)
        while pending:
            try:
                handle = completion.get(timeout=wait_timeout)
            except _queue.Empty:
                for open_handle in handles:
                    open_handle.cancel()
                raise PortfolioError(
                    f"portfolio race on {problem.name!r} stalled: no "
                    f"entrant finished within {wait_timeout:g}s"
                ) from None
            pending -= 1
            if handle.status is not JobStatus.DONE:
                continue
            result = handle.result(timeout=0)
            if result.feasible:
                winner, winner_result = handle, result
                break
            completed.append((handle, result))

        cancelled = 0
        for handle in handles:
            if handle is winner:
                continue
            if handle.cancel():
                cancelled += 1
        # Wait the losers out so their workers are reaped before we
        # return — the race leaves no orphan processes behind.
        for handle in handles:
            if handle is not winner:
                try:
                    handle.exception(timeout=wait_timeout)
                except TimeoutError:
                    pass

        if winner_result is None:
            if completed:
                winner, winner_result = min(
                    completed, key=lambda pair: pair[1].energy)
            else:
                failures = "; ".join(
                    f"{handle.solver}: {handle.status.value}"
                    for handle in handles)
                raise PortfolioError(
                    f"no portfolio entrant completed on "
                    f"{problem.name!r} ({failures})"
                )
        telemetry.count("service.portfolio.winners")
        telemetry.count(f"service.portfolio.win.{winner.solver}")

    import dataclasses

    record: Dict[str, Any] = {
        "entrants": [solver for solver, _ in entrants],
        "winner": winner.solver,
        "winner_feasible": winner_result.feasible,
        "budget": budget,
        "cancelled": cancelled,
        "statuses": {f"{handle.solver}#{handle.job_id}":
                     handle.status.value for handle in handles},
    }
    return dataclasses.replace(
        winner_result,
        provenance={**winner_result.provenance, "portfolio": record},
    )
