"""The concurrent solve service: queue -> worker pool -> cache.

:class:`SolveService` turns the blocking :func:`repro.compile.solve`
call into a managed execution subsystem:

* **submit/handle** — :meth:`SolveService.submit` validates the job
  *before* enqueue (registry name, picklable config, resolved
  convergence tri-state), puts it on a bounded priority queue and
  returns a :class:`JobHandle` with status, result waiting and
  cancellation.
* **worker pool** — N dispatcher threads execute jobs either inline
  (``mode="thread"``) or in reaped worker processes
  (``mode="process"``, the default) with hard per-job deadlines.
* **result cache + coalescing** — seeded jobs are content-addressed
  (problem terms + solver + config + seed); repeat submissions hit the
  LRU cache and *identical in-flight* submissions coalesce onto the
  same job instead of re-executing.
* **telemetry** — worker collectors/tracers are merged back into the
  parent's, so one report/timeline covers the whole fleet; every
  result's provenance carries a ``service`` block (job id, worker pid,
  queue wait, cache disposition).

Results are bit-for-bit identical to sequential ``solve`` calls under
fixed seeds: workers run only the registered backend on the bare
model, and decoding/best-pick run parent-side through the exact same
code path (:func:`repro.compile.assemble_result`).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .. import telemetry
from ..telemetry import metrics as _metrics
from ..compile.dispatch import (
    SolveResult,
    SolverConfig,
    assemble_result,
    available_solvers,
    decode_samples,
)
from ..compile.ir import CompiledProblem
from .cache import ResultCache, cache_key
from .queue import Job, JobQueue, JobStatus, QueueFullError
from .workers import (
    WorkerCancelled,
    WorkerCrashed,
    WorkerTimeout,
    execute_in_process,
    execute_inline,
)

__all__ = [
    "JobCancelledError",
    "JobHandle",
    "JobTimeoutError",
    "QueueFullError",
    "ServiceError",
    "SolveService",
]


def _jobs_total(registry: "_metrics.MetricsRegistry"):
    """The shared job-lifecycle counter (labeled by status)."""
    return registry.counter(
        "service_jobs_total",
        "job lifecycle events by status (submitted, coalesced, "
        "cache_hit, done, failed, timeout, cancelled)",
        ("status",),
    )


def _queue_depth(registry: "_metrics.MetricsRegistry"):
    return registry.gauge("service_queue_depth",
                          "jobs queued but not yet dispatched")


class ServiceError(RuntimeError):
    """Base class for solve-service failures."""


class JobTimeoutError(ServiceError):
    """The job blew its deadline and was reaped."""


class JobCancelledError(ServiceError):
    """The job was cancelled before it produced a result."""


#: Accepted shapes for one ``solve_many`` entry.
JobSpec = Union[CompiledProblem, tuple, Dict[str, Any]]


class JobHandle:
    """Caller-facing view of one submitted job (a future, in effect)."""

    def __init__(self, job: Job, service: "SolveService"):
        self._job = job
        self._service = service

    @property
    def job_id(self) -> int:
        return self._job.job_id

    @property
    def solver(self) -> str:
        return self._job.solver

    @property
    def status(self) -> JobStatus:
        with self._job.lock:
            return self._job.status

    def done(self) -> bool:
        return self.status.is_terminal()

    def cancel(self) -> bool:
        """Cancel the job; returns whether the cancellation won.

        Queued jobs are withdrawn immediately. A job already running
        on a worker *process* is reaped mid-flight; with thread
        workers a running job cannot be interrupted and ``cancel``
        returns ``False`` once execution finished first.
        """
        return self._service._cancel_job(self._job)

    def result(self, timeout: Optional[float] = None) -> SolveResult:
        """Wait for and return the result.

        Raises :class:`JobTimeoutError` / :class:`JobCancelledError` /
        the worker's failure for unsuccessful jobs, and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        if not self._job.event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout!r}s "
                f"(status {self.status.value})"
            )
        with self._job.lock:
            status, result, error = (self._job.status, self._job.result,
                                     self._job.error)
        if status is JobStatus.DONE:
            return result
        if error is not None:
            raise error
        raise ServiceError(
            f"job {self.job_id} ended {status.value} without a result"
        )

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The job's failure, or ``None`` when it succeeded."""
        if not self._job.event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout!r}s"
            )
        with self._job.lock:
            return self._job.error

    def add_done_callback(self, callback) -> None:
        """Run ``callback(handle)`` once the job is terminal."""
        self._job.add_callback(lambda _job: callback(self))

    def __repr__(self) -> str:
        return (f"JobHandle(job_id={self.job_id}, "
                f"solver={self.solver!r}, status={self.status.value})")


class SolveService:
    """Concurrent solve service over the ``repro.compile`` registry.

    Parameters
    ----------
    max_workers:
        Dispatcher/worker slots; at most this many jobs execute
        concurrently.
    mode:
        ``"process"`` (default) runs each job in a freshly forked,
        deadline-reapable worker process; ``"thread"`` runs jobs
        inline on dispatcher threads (lower latency, soft deadlines —
        best for many small jobs).
    queue_capacity:
        Bound on queued-but-not-running jobs; submissions beyond it
        raise :class:`QueueFullError` (or block with ``block=True``).
    cache_entries:
        LRU capacity of the result cache; ``0`` disables caching (and
        with it request coalescing).
    default_deadline:
        Per-job wall-clock budget in seconds applied when ``submit``
        gets no explicit ``deadline``; ``None`` means unbounded.
    start_method:
        ``multiprocessing`` start method for process workers (``None``
        = platform default, ``fork`` on Linux).
    """

    def __init__(self, max_workers: int = 2, mode: str = "process",
                 queue_capacity: int = 128, cache_entries: int = 256,
                 default_deadline: Optional[float] = None,
                 start_method: Optional[str] = None):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if mode not in ("process", "thread"):
            raise ValueError(
                f"mode must be 'process' or 'thread', got {mode!r}"
            )
        if cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        self.max_workers = max_workers
        self.mode = mode
        self.default_deadline = default_deadline
        self._context = (multiprocessing.get_context(start_method)
                         if mode == "process" else None)
        self._queue = JobQueue(queue_capacity)
        self._cache = (ResultCache(cache_entries)
                       if cache_entries else None)
        self._inflight: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._shutdown = False
        self._stats = {status: 0 for status in JobStatus}
        self._coalesced = 0
        self._cache_hits_served = 0
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop,
                             name=f"repro-solve-worker-{index}",
                             daemon=True)
            for index in range(max_workers)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- submission ------------------------------------------------------
    def submit(self, problem: CompiledProblem, solver: str = "sa",
               config: Optional[SolverConfig] = None, *,
               priority: int = 0, deadline: Optional[float] = None,
               repair: bool = False, block: bool = False,
               timeout: Optional[float] = None) -> JobHandle:
        """Enqueue one solve; returns a :class:`JobHandle` immediately.

        Validation happens *here*, not in the worker: unknown solver
        names, pre-configured solver instances (the in-process escape
        hatch of :func:`repro.compile.solve` — unpicklable and
        unsupported across workers) and unpicklable configs all raise
        :class:`ValueError` before the job is enqueued. Higher
        ``priority`` dequeues first; ``deadline`` seconds of wall
        clock are enforced by reaping (process mode). ``block=True``
        waits for queue capacity instead of raising
        :class:`QueueFullError`.
        """
        if self._shutdown:
            raise ServiceError("service is shut down")
        if not isinstance(problem, CompiledProblem):
            raise TypeError(
                f"submit expects a CompiledProblem, got "
                f"{type(problem).__name__}"
            )
        if not isinstance(solver, str):
            raise ValueError(
                "the solve service dispatches registry solver names "
                f"only, got {type(solver).__name__}; the "
                "pre-configured solver-instance escape hatch of "
                "repro.compile.solve is in-process only — register "
                "the solver under a name or call solve() directly"
            )
        if solver not in available_solvers():
            names = ", ".join(available_solvers())
            raise ValueError(
                f"unknown solver {solver!r}; registered solvers: {names}"
            )
        config = (config if config is not None
                  else SolverConfig()).resolve_convergence()
        if self.mode == "process":
            config.require_picklable()
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds")

        key = (cache_key(problem, solver, config, repair=repair)
               if self._cache is not None else None)
        with self._lock:
            if key is not None:
                cached = self._cache.peek(key)
                if cached is not None:
                    return self._cache_hit_handle(problem, solver,
                                                  config, key, cached)
                inflight = self._inflight.get(key)
                if inflight is not None:
                    inflight.coalesced += 1
                    self._coalesced += 1
                    telemetry.count("service.jobs.coalesced")
                    registry = _metrics.get_registry()
                    if registry is not None:
                        _jobs_total(registry).labels(
                            status="coalesced").inc()
                        registry.counter(
                            "service_cache_events_total",
                            "result-cache lookup outcomes",
                            ("event",)).labels(event="coalesce").inc()
                    return JobHandle(inflight, self)
            if self._cache is not None:
                self._cache.note_miss(key)
            self._next_id += 1
            job = Job(
                job_id=self._next_id, problem=problem, solver=solver,
                config=config, repair=repair, priority=priority,
                deadline=deadline, cache_key=key,
            )
            if key is not None:
                self._inflight[key] = job
        try:
            self._queue.put(job, block=block, timeout=timeout)
        except BaseException:
            with self._lock:
                if key is not None and self._inflight.get(key) is job:
                    del self._inflight[key]
            raise
        telemetry.count("service.jobs.submitted")
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="submitted").inc()
            _queue_depth(registry).set(len(self._queue))
        return JobHandle(job, self)

    def _cache_hit_handle(self, problem: CompiledProblem, solver: str,
                          config: SolverConfig, key: str,
                          cached: SolveResult) -> JobHandle:
        """An already-resolved handle serving a cached result."""
        import dataclasses

        self._cache.note_hit(key)
        self._cache_hits_served += 1
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="cache_hit").inc()
        result = dataclasses.replace(
            cached,
            provenance={**cached.provenance,
                        "service": {**cached.provenance.get("service", {}),
                                    "cache": "hit"}},
        )
        self._next_id += 1
        job = Job(job_id=self._next_id, problem=problem, solver=solver,
                  config=config, cache_key=key)
        job.status = JobStatus.DONE
        job.result = result
        job.finished_at = time.perf_counter()
        job.event.set()
        return JobHandle(job, self)

    # -- convenience frontends -------------------------------------------
    def solve(self, problem: CompiledProblem, solver: str = "sa",
              config: Optional[SolverConfig] = None,
              **submit_kwargs: Any) -> SolveResult:
        """Submit one job and block for its result."""
        submit_kwargs.setdefault("block", True)
        return self.submit(problem, solver, config,
                           **submit_kwargs).result()

    def solve_many(self, jobs: Iterable[JobSpec], *,
                   solver: str = "sa",
                   config: Optional[SolverConfig] = None,
                   priority: int = 0,
                   deadline: Optional[float] = None,
                   repair: bool = False,
                   return_exceptions: bool = False
                   ) -> List[Union[SolveResult, BaseException]]:
        """Batch API: submit every job, wait for all, keep input order.

        Each entry is a :class:`CompiledProblem`, a ``(problem[,
        solver[, config]])`` tuple, or a dict of :meth:`submit` keyword
        arguments. The keyword-level ``solver``/``config``/... act as
        defaults for entries that do not override them. Independent
        entries execute concurrently across the worker pool — this is
        how the experiment harness parallelizes independent rows.
        ``return_exceptions=True`` returns failures in-place instead
        of raising the first one.
        """
        handles: List[JobHandle] = []
        for spec in jobs:
            kwargs: Dict[str, Any] = {
                "solver": solver, "config": config,
                "priority": priority, "deadline": deadline,
                "repair": repair,
            }
            if isinstance(spec, CompiledProblem):
                kwargs["problem"] = spec
            elif isinstance(spec, tuple):
                if not 1 <= len(spec) <= 3:
                    raise ValueError(
                        "tuple job specs are (problem[, solver[, "
                        f"config]]), got length {len(spec)}"
                    )
                kwargs["problem"] = spec[0]
                if len(spec) > 1:
                    kwargs["solver"] = spec[1]
                if len(spec) > 2:
                    kwargs["config"] = spec[2]
            elif isinstance(spec, dict):
                unknown = set(spec) - {"problem", "solver", "config",
                                       "priority", "deadline", "repair"}
                if unknown:
                    raise ValueError(
                        f"unknown job-spec keys: {sorted(unknown)}"
                    )
                kwargs.update(spec)
            else:
                raise TypeError(
                    "job specs are CompiledProblem, tuple or dict; "
                    f"got {type(spec).__name__}"
                )
            problem = kwargs.pop("problem")
            handles.append(
                self.submit(problem, block=True, **kwargs)
            )
        results: List[Union[SolveResult, BaseException]] = []
        for handle in handles:
            try:
                results.append(handle.result())
            except BaseException as error:
                if not return_exceptions:
                    raise
                results.append(error)
        return results

    def solve_portfolio(self, problem: CompiledProblem,
                        solvers: Sequence[str] = ("sa", "tabu", "pt"),
                        **race_kwargs: Any) -> SolveResult:
        """Race several solvers; first feasible wins, losers cancel.

        See :func:`repro.service.portfolio.race`.
        """
        from .portfolio import race

        return race(self, problem, solvers=solvers, **race_kwargs)

    # -- cancellation ----------------------------------------------------
    def _cancel_job(self, job: Job) -> bool:
        won = job.resolve(
            JobStatus.CANCELLED,
            error=JobCancelledError(f"job {job.job_id} cancelled"),
        )
        if not won:
            return False
        with job.lock:
            dequeued = job.dequeued
            process = job.process
        if not dequeued:
            self._queue.release(job)
        elif process is not None:
            # Reap the live worker; the dispatcher observes the death,
            # sees the terminal status and moves on.
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        with self._lock:
            key = job.cache_key
            if key is not None and self._inflight.get(key) is job:
                del self._inflight[key]
            self._stats[JobStatus.CANCELLED] += 1
        telemetry.count("service.jobs.cancelled")
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="cancelled").inc()
        return True

    # -- dispatcher loop -------------------------------------------------
    def _dispatch_loop(self) -> None:
        idle_since = time.perf_counter()
        while True:
            job = self._queue.get()
            if job is None:
                return
            with job.lock:
                if job.status.is_terminal():
                    continue
                job.status = JobStatus.RUNNING
            telemetry.count("service.jobs.started")
            registry = _metrics.get_registry()
            busy_since = time.perf_counter()
            if registry is not None:
                registry.counter(
                    "service_worker_idle_seconds_total",
                    "dispatcher time spent waiting for work"
                ).inc(busy_since - idle_since)
                registry.gauge(
                    "service_workers_busy",
                    "dispatchers currently executing a job").inc()
                _queue_depth(registry).set(len(self._queue))
            try:
                self._execute(job)
            finally:
                idle_since = time.perf_counter()
                if registry is not None:
                    registry.counter(
                        "service_worker_busy_seconds_total",
                        "dispatcher time spent executing jobs"
                    ).inc(idle_since - busy_since)
                    registry.gauge(
                        "service_workers_busy",
                        "dispatchers currently executing a job").dec()

    def _execute(self, job: Job) -> None:
        queue_seconds = job.started_at - job.submitted_at
        status = JobStatus.FAILED
        result: Optional[SolveResult] = None
        error: Optional[BaseException] = None
        registry = _metrics.get_registry()
        if registry is not None:
            registry.histogram(
                "service_queue_wait_seconds",
                "wall clock from submit to dispatch"
            ).observe(queue_seconds)
        execute_start = time.perf_counter()
        try:
            with telemetry.span(f"service.execute.{job.problem.name}"):
                if self.mode == "process":
                    outcome = execute_in_process(
                        job, job.problem.model, job.solver, job.config,
                        self._context, deadline=job.deadline,
                    )
                    self._merge_outcome(outcome)
                else:
                    outcome = execute_inline(
                        job, job.problem.model, job.solver, job.config,
                        deadline=job.deadline,
                    )
                solutions = decode_samples(job.problem, outcome.samples)
                result = assemble_result(
                    job.problem, job.solver, job.config,
                    outcome.samples, solutions, outcome.duration,
                    convergence=outcome.convergence, repair=job.repair,
                    provenance_extra={"service": {
                        "job_id": job.job_id,
                        "mode": self.mode,
                        "worker_pid": outcome.pid,
                        "queue_seconds": queue_seconds,
                        "deadline": job.deadline,
                        "coalesced": job.coalesced,
                        "cache": ("miss" if job.cache_key is not None
                                  else "off"),
                    }},
                )
            status = JobStatus.DONE
        except WorkerTimeout as exc:
            status = JobStatus.TIMEOUT
            error = JobTimeoutError(str(exc))
        except WorkerCancelled:
            status = JobStatus.CANCELLED
            error = JobCancelledError(f"job {job.job_id} cancelled")
        except WorkerCrashed as exc:
            error = ServiceError(str(exc))
        except BaseException as exc:  # decode/score hooks can raise too
            error = exc
        if registry is not None:
            registry.histogram(
                "service_execute_seconds",
                "wall clock from dispatch to resolution, per solver",
                ("solver",)).labels(solver=job.solver).observe(
                    time.perf_counter() - execute_start)
        if status is JobStatus.DONE and self._cache is not None:
            self._cache.put(job.cache_key, result)
        resolved = job.resolve(status, result=result, error=error)
        with self._lock:
            key = job.cache_key
            if key is not None and self._inflight.get(key) is job:
                del self._inflight[key]
            if resolved:
                self._stats[status] += 1
        if resolved:
            telemetry.count(f"service.jobs.{status.value}")
            if registry is not None:
                _jobs_total(registry).labels(status=status.value).inc()
            if status is JobStatus.DONE:
                telemetry.record("service.queue_seconds", queue_seconds)

    def _merge_outcome(self, outcome) -> None:
        """Fold a worker's telemetry/trace/metrics payloads into the
        parent."""
        collector = telemetry.get_collector()
        if (collector is not None
                and outcome.telemetry_snapshot is not None):
            collector.merge_snapshot(outcome.telemetry_snapshot)
            telemetry.count("service.telemetry.merges")
        tracer = telemetry.get_tracer()
        if tracer is not None and outcome.trace_events:
            tracer.merge_events(outcome.trace_events,
                                epoch_ns=outcome.trace_epoch_ns)
        registry = _metrics.get_registry()
        if (registry is not None
                and getattr(outcome, "metrics_snapshot", None)
                is not None):
            registry.merge_snapshot(outcome.metrics_snapshot)
            registry.counter(
                "service_metrics_merges_total",
                "worker metrics snapshots folded into the parent"
            ).inc()

    # -- introspection / lifecycle ---------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Point-in-time service statistics (counts, queue, cache)."""
        with self._lock:
            jobs = {status.value: count
                    for status, count in self._stats.items()
                    if status.is_terminal()}
            jobs["submitted"] = self._next_id
            jobs["coalesced"] = self._coalesced
            jobs["cache_hits_served"] = self._cache_hits_served
            inflight = len(self._inflight)
        return {
            "mode": self.mode,
            "max_workers": self.max_workers,
            "jobs": jobs,
            "inflight_keys": inflight,
            "queue": self._queue.snapshot(),
            "cache": (self._cache.snapshot()
                      if self._cache is not None else None),
        }

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop accepting jobs; optionally wait for the pool to drain.

        ``cancel_pending=True`` additionally cancels every job still
        queued (running jobs finish or are reaped by their deadlines).
        """
        self._shutdown = True
        if cancel_pending:
            with self._lock:
                pending = list(self._inflight.values())
            for job in pending:
                self._cancel_job(job)
        self._queue.close()
        if wait:
            for thread in self._dispatchers:
                thread.join()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(wait=True)
        return False

    def __repr__(self) -> str:
        return (f"SolveService(max_workers={self.max_workers}, "
                f"mode={self.mode!r}, queue={len(self._queue)})")
