"""The concurrent solve service: queue -> worker pool -> cache.

:class:`SolveService` turns the blocking :func:`repro.compile.solve`
call into a managed execution subsystem:

* **submit/handle** — :meth:`SolveService.submit` validates the job
  *before* enqueue (registry name, picklable config, resolved
  convergence tri-state), puts it on a bounded priority queue and
  returns a :class:`JobHandle` with status, result waiting and
  cancellation.
* **warm worker pool** — N dispatcher threads execute jobs either
  inline (``mode="thread"``) or on *persistent* worker processes
  (``mode="process"``, the default): each dispatcher owns one
  long-lived worker with the solver registry imported and warm, models
  travel via shared memory (:mod:`repro.service.pool`), and hard
  per-job deadlines still reap (and then respawn) a stuck worker.
* **cross-job batching** — deadline-free jobs on the *same model and
  solver* as a job being dispatched fold into its worker round trip,
  so N same-model jobs with different seeds/configs cost one dispatch.
* **result cache + coalescing** — seeded jobs are content-addressed
  (problem terms + solver + config + seed); repeat submissions hit the
  LRU cache and *identical in-flight* submissions coalesce onto the
  same job instead of re-executing.
* **telemetry** — each warm worker's collector/tracer/metrics
  accumulate across its whole life and merge into the parent's once,
  at pool drain; every result's provenance carries a ``service`` block
  (job id, worker pid, queue wait, cache and dispatch disposition).

Results are bit-for-bit identical to sequential ``solve`` calls under
fixed seeds: workers run only the registered backend on the bare
model, and decoding/best-pick run parent-side through the exact same
code path (:func:`repro.compile.assemble_result`).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .. import telemetry
from ..telemetry import context as _context
from ..telemetry import flight as _flight
from ..telemetry import metrics as _metrics
from ..compile.dispatch import (
    SolveResult,
    SolverConfig,
    assemble_result,
    available_solvers,
    decode_samples,
)
from ..compile.ir import CompiledProblem
from .cache import ResultCache, ShardedResultCache, cache_key
from .pool import SharedModelStore, WarmWorkerPool, expand_samples
from .queue import Job, JobQueue, JobStatus, QueueFullError
from .workers import (
    WorkerCancelled,
    WorkerCrashed,
    WorkerTimeout,
    execute_inline,
)

__all__ = [
    "JobCancelledError",
    "JobHandle",
    "JobTimeoutError",
    "QueueFullError",
    "ServiceError",
    "SolveService",
]


def _jobs_total(registry: "_metrics.MetricsRegistry"):
    """The shared job-lifecycle counter (labeled by status)."""
    return registry.counter(
        "service_jobs_total",
        "job lifecycle events by status (submitted, coalesced, "
        "cache_hit, done, failed, timeout, cancelled)",
        ("status",),
    )


def _queue_depth(registry: "_metrics.MetricsRegistry"):
    return registry.gauge("service_queue_depth",
                          "jobs queued but not yet dispatched")


class ServiceError(RuntimeError):
    """Base class for solve-service failures."""


class JobTimeoutError(ServiceError):
    """The job blew its deadline and was reaped."""


class JobCancelledError(ServiceError):
    """The job was cancelled before it produced a result."""


#: Accepted shapes for one ``solve_many`` entry.
JobSpec = Union[CompiledProblem, tuple, Dict[str, Any]]


class JobHandle:
    """Caller-facing view of one submitted job (a future, in effect)."""

    def __init__(self, job: Job, service: "SolveService"):
        self._job = job
        self._service = service

    @property
    def job_id(self) -> int:
        return self._job.job_id

    @property
    def solver(self) -> str:
        return self._job.solver

    @property
    def trace_id(self) -> Optional[str]:
        """The job's trace-context id (``None`` when the layer is off)."""
        return self._job.trace_id

    @property
    def status(self) -> JobStatus:
        with self._job.lock:
            return self._job.status

    def done(self) -> bool:
        return self.status.is_terminal()

    def cancel(self) -> bool:
        """Cancel the job; returns whether the cancellation won.

        Queued jobs are withdrawn immediately. A job already running
        on a worker *process* is reaped mid-flight; with thread
        workers a running job cannot be interrupted and ``cancel``
        returns ``False`` once execution finished first.
        """
        return self._service._cancel_job(self._job)

    def result(self, timeout: Optional[float] = None) -> SolveResult:
        """Wait for and return the result.

        Raises :class:`JobTimeoutError` / :class:`JobCancelledError` /
        the worker's failure for unsuccessful jobs, and
        :class:`TimeoutError` when ``timeout`` elapses first.
        """
        if not self._job.event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout!r}s "
                f"(status {self.status.value})"
            )
        with self._job.lock:
            status, result, error = (self._job.status, self._job.result,
                                     self._job.error)
        if status is JobStatus.DONE:
            return result
        if error is not None:
            raise error
        raise ServiceError(
            f"job {self.job_id} ended {status.value} without a result"
        )

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """The job's failure, or ``None`` when it succeeded."""
        if not self._job.event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout!r}s"
            )
        with self._job.lock:
            return self._job.error

    def add_done_callback(self, callback) -> None:
        """Run ``callback(handle)`` once the job is terminal."""
        self._job.add_callback(lambda _job: callback(self))

    def __repr__(self) -> str:
        return (f"JobHandle(job_id={self.job_id}, "
                f"solver={self.solver!r}, status={self.status.value})")


class SolveService:
    """Concurrent solve service over the ``repro.compile`` registry.

    Parameters
    ----------
    max_workers:
        Dispatcher/worker slots; at most this many jobs execute
        concurrently.
    mode:
        ``"process"`` (default) runs jobs on persistent warm worker
        processes — one per dispatcher, spawned once, fed through
        shared memory, reaped *and respawned* on deadline/cancel;
        ``"thread"`` runs jobs inline on dispatcher threads (lower
        latency, soft deadlines — best for many small jobs).
    queue_capacity:
        Bound on queued-but-not-running jobs; submissions beyond it
        raise :class:`QueueFullError` (or block with ``block=True``).
    cache_entries:
        LRU capacity of the result cache; ``0`` disables caching (and
        with it request coalescing).
    cache_shards:
        Number of independently locked result-cache shards. ``1``
        (default) keeps the classic single-lock
        :class:`~repro.service.cache.ResultCache`; values above one
        swap in :class:`~repro.service.cache.ShardedResultCache`, which
        spreads hit-path lookups across per-shard locks — the HTTP
        front end (:mod:`repro.server`) services many concurrent
        readers and uses 8.
    default_deadline:
        Per-job wall-clock budget in seconds applied when ``submit``
        gets no explicit ``deadline``; ``None`` means unbounded.
    start_method:
        ``multiprocessing`` start method for process workers (``None``
        = platform default, ``fork`` on Linux).
    batch_limit:
        Most jobs one warm-worker round trip may carry (process mode).
        When a dispatcher takes a deadline-free job, up to
        ``batch_limit - 1`` queued jobs on the same model and solver
        fold into its dispatch. ``1`` disables cross-job batching.
    """

    def __init__(self, max_workers: int = 2, mode: str = "process",
                 queue_capacity: int = 128, cache_entries: int = 256,
                 default_deadline: Optional[float] = None,
                 start_method: Optional[str] = None,
                 batch_limit: int = 8, cache_shards: int = 1):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if mode not in ("process", "thread"):
            raise ValueError(
                f"mode must be 'process' or 'thread', got {mode!r}"
            )
        if cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if cache_shards < 1:
            raise ValueError("cache_shards must be positive")
        if batch_limit < 1:
            raise ValueError("batch_limit must be positive")
        self.max_workers = max_workers
        self.mode = mode
        self.default_deadline = default_deadline
        self.batch_limit = batch_limit
        self._context = (multiprocessing.get_context(start_method)
                         if mode == "process" else None)
        self._queue = JobQueue(queue_capacity)
        if not cache_entries:
            self._cache = None
        elif cache_shards > 1:
            self._cache = ShardedResultCache(cache_entries,
                                             shards=cache_shards)
        else:
            self._cache = ResultCache(cache_entries)
        self._inflight: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        self._shutdown = False
        self._stats = {status: 0 for status in JobStatus}
        self._coalesced = 0
        self._cache_hits_served = 0
        #: Per-worker attribution shipped at pool drain: which
        #: (job_id, trace_id, solver) each merged snapshot covered.
        self._drain_log: List[Dict[str, Any]] = []
        self._pool = (WarmWorkerPool(max_workers, self._context)
                      if mode == "process" else None)
        self._store = (SharedModelStore()
                       if mode == "process" else None)
        self._active_dispatchers = max_workers
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop,
                             args=(index,),
                             name=f"repro-solve-worker-{index}",
                             daemon=True)
            for index in range(max_workers)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- submission ------------------------------------------------------
    def submit(self, problem: CompiledProblem, solver: str = "sa",
               config: Optional[SolverConfig] = None, *,
               priority: int = 0, deadline: Optional[float] = None,
               repair: bool = False, block: bool = False,
               timeout: Optional[float] = None) -> JobHandle:
        """Enqueue one solve; returns a :class:`JobHandle` immediately.

        Validation happens *here*, not in the worker: unknown solver
        names, pre-configured solver instances (the in-process escape
        hatch of :func:`repro.compile.solve` — unpicklable and
        unsupported across workers) and unpicklable configs all raise
        :class:`ValueError` before the job is enqueued. Higher
        ``priority`` dequeues first; ``deadline`` seconds of wall
        clock are enforced by reaping (process mode). ``block=True``
        waits for queue capacity instead of raising
        :class:`QueueFullError`.
        """
        if self._shutdown:
            raise ServiceError("service is shut down")
        if not isinstance(problem, CompiledProblem):
            raise TypeError(
                f"submit expects a CompiledProblem, got "
                f"{type(problem).__name__}"
            )
        if not isinstance(solver, str):
            raise ValueError(
                "the solve service dispatches registry solver names "
                f"only, got {type(solver).__name__}; the "
                "pre-configured solver-instance escape hatch of "
                "repro.compile.solve is in-process only — register "
                "the solver under a name or call solve() directly"
            )
        if solver not in available_solvers():
            names = ", ".join(available_solvers())
            raise ValueError(
                f"unknown solver {solver!r}; registered solvers: {names}"
            )
        config = (config if config is not None
                  else SolverConfig()).resolve_convergence()
        if self.mode == "process":
            config.require_picklable()
        if deadline is None:
            deadline = self.default_deadline
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds")

        # Trace context: inherit the caller's trace (pipeline entry)
        # or start a fresh one per submission — minted outside the
        # service lock, and RNG-neutral (uuid4 reads os.urandom).
        trace_id: Optional[str] = None
        context_state = _context.get_context_state()
        if context_state is not None:
            parent = context_state.current()
            trace_id = (parent.trace_id if parent is not None
                        else context_state.new_trace_id())

        # Computed once per submission: the cache key, the coalescing
        # map, the shared-memory model store and batch folding all key
        # on it (and content_key memoizes on the problem anyway).
        problem_key = (problem.content_key()
                       if (self._cache is not None
                           or self.mode == "process") else None)
        key = (cache_key(problem, solver, config, repair=repair,
                         problem_key=problem_key)
               if self._cache is not None else None)
        with self._lock:
            if key is not None:
                cached = self._cache.peek(key)
                if cached is not None:
                    return self._cache_hit_handle(problem, solver,
                                                  config, key, cached,
                                                  trace_id=trace_id)
                inflight = self._inflight.get(key)
                if inflight is not None:
                    inflight.coalesced += 1
                    self._coalesced += 1
                    telemetry.count("service.jobs.coalesced")
                    registry = _metrics.get_registry()
                    if registry is not None:
                        _jobs_total(registry).labels(
                            status="coalesced").inc()
                        registry.counter(
                            "service_cache_events_total",
                            "result-cache lookup outcomes",
                            ("event",)).labels(event="coalesce").inc()
                    tracer = telemetry.get_tracer()
                    if tracer is not None:
                        tracer.instant(
                            "service.job.coalesced", category="service",
                            args={"trace_id": trace_id,
                                  "leader_job_id": inflight.job_id,
                                  "leader_trace_id": inflight.trace_id,
                                  "solver": solver})
                    _flight.flight_event(
                        "job", "coalesced",
                        trace_id=trace_id or inflight.trace_id,
                        job_id=inflight.job_id, solver=solver)
                    return JobHandle(inflight, self)
            if self._cache is not None:
                self._cache.note_miss(key)
            self._next_id += 1
            job = Job(
                job_id=self._next_id, problem=problem, solver=solver,
                config=config, repair=repair, priority=priority,
                deadline=deadline, cache_key=key,
                model_key=problem_key, trace_id=trace_id,
            )
            if key is not None:
                self._inflight[key] = job
        try:
            self._queue.put(job, block=block, timeout=timeout)
        except BaseException:
            with self._lock:
                if key is not None and self._inflight.get(key) is job:
                    del self._inflight[key]
            raise
        telemetry.count("service.jobs.submitted")
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="submitted").inc()
            _queue_depth(registry).set(len(self._queue))
        tracer = telemetry.get_tracer()
        if tracer is not None:
            tracer.instant("service.job.submitted", category="service",
                           args={"trace_id": trace_id,
                                 "job_id": job.job_id,
                                 "solver": solver,
                                 "priority": priority,
                                 "deadline": deadline})
        _flight.flight_event("job", "submitted", trace_id=trace_id,
                             job_id=job.job_id, solver=solver,
                             deadline=deadline)
        return JobHandle(job, self)

    def _cache_hit_handle(self, problem: CompiledProblem, solver: str,
                          config: SolverConfig, key: str,
                          cached: SolveResult,
                          trace_id: Optional[str] = None) -> JobHandle:
        """An already-resolved handle serving a cached result."""
        import dataclasses

        self._cache.note_hit(key)
        self._cache_hits_served += 1
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="cache_hit").inc()
        service_block = {**cached.provenance.get("service", {}),
                         "cache": "hit"}
        if trace_id is not None:
            service_block["trace_id"] = trace_id
        result = dataclasses.replace(
            cached,
            provenance={**cached.provenance, "service": service_block},
        )
        self._next_id += 1
        job = Job(job_id=self._next_id, problem=problem, solver=solver,
                  config=config, cache_key=key, trace_id=trace_id)
        job.status = JobStatus.DONE
        job.result = result
        job.finished_at = time.perf_counter()
        job.event.set()
        tracer = telemetry.get_tracer()
        if tracer is not None:
            tracer.instant("service.job.cache_hit", category="service",
                           args={"trace_id": trace_id,
                                 "job_id": job.job_id,
                                 "solver": solver})
        _flight.flight_event("job", "cache_hit", trace_id=trace_id,
                             job_id=job.job_id, solver=solver)
        return JobHandle(job, self)

    # -- convenience frontends -------------------------------------------
    def solve(self, problem: CompiledProblem, solver: str = "sa",
              config: Optional[SolverConfig] = None,
              **submit_kwargs: Any) -> SolveResult:
        """Submit one job and block for its result."""
        submit_kwargs.setdefault("block", True)
        return self.submit(problem, solver, config,
                           **submit_kwargs).result()

    def solve_many(self, jobs: Iterable[JobSpec], *,
                   solver: str = "sa",
                   config: Optional[SolverConfig] = None,
                   priority: int = 0,
                   deadline: Optional[float] = None,
                   repair: bool = False,
                   return_exceptions: bool = False
                   ) -> List[Union[SolveResult, BaseException]]:
        """Batch API: submit every job, wait for all, keep input order.

        Each entry is a :class:`CompiledProblem`, a ``(problem[,
        solver[, config]])`` tuple, or a dict of :meth:`submit` keyword
        arguments. The keyword-level ``solver``/``config``/... act as
        defaults for entries that do not override them. Independent
        entries execute concurrently across the worker pool — this is
        how the experiment harness parallelizes independent rows.
        ``return_exceptions=True`` returns failures in-place instead
        of raising the first one.
        """
        handles: List[JobHandle] = []
        for spec in jobs:
            kwargs: Dict[str, Any] = {
                "solver": solver, "config": config,
                "priority": priority, "deadline": deadline,
                "repair": repair,
            }
            if isinstance(spec, CompiledProblem):
                kwargs["problem"] = spec
            elif isinstance(spec, tuple):
                if not 1 <= len(spec) <= 3:
                    raise ValueError(
                        "tuple job specs are (problem[, solver[, "
                        f"config]]), got length {len(spec)}"
                    )
                kwargs["problem"] = spec[0]
                if len(spec) > 1:
                    kwargs["solver"] = spec[1]
                if len(spec) > 2:
                    kwargs["config"] = spec[2]
            elif isinstance(spec, dict):
                unknown = set(spec) - {"problem", "solver", "config",
                                       "priority", "deadline", "repair"}
                if unknown:
                    raise ValueError(
                        f"unknown job-spec keys: {sorted(unknown)}"
                    )
                kwargs.update(spec)
            else:
                raise TypeError(
                    "job specs are CompiledProblem, tuple or dict; "
                    f"got {type(spec).__name__}"
                )
            problem = kwargs.pop("problem")
            handles.append(
                self.submit(problem, block=True, **kwargs)
            )
        results: List[Union[SolveResult, BaseException]] = []
        for handle in handles:
            try:
                results.append(handle.result())
            except BaseException as error:
                if not return_exceptions:
                    raise
                results.append(error)
        return results

    def solve_portfolio(self, problem: CompiledProblem,
                        solvers: Sequence[str] = ("sa", "tabu", "pt"),
                        **race_kwargs: Any) -> SolveResult:
        """Race several solvers; first feasible wins, losers cancel.

        See :func:`repro.service.portfolio.race`.
        """
        from .portfolio import race

        return race(self, problem, solvers=solvers, **race_kwargs)

    # -- cancellation ----------------------------------------------------
    def _cancel_job(self, job: Job) -> bool:
        won = job.resolve(
            JobStatus.CANCELLED,
            error=JobCancelledError(f"job {job.job_id} cancelled"),
        )
        if not won:
            return False
        with job.lock:
            dequeued = job.dequeued
            process = job.process
        if not dequeued:
            self._queue.release(job)
        elif process is not None:
            # Reap the live worker; the dispatcher observes the death,
            # sees the terminal status and moves on.
            try:
                process.terminate()
            except (OSError, ValueError):
                pass
        with self._lock:
            key = job.cache_key
            if key is not None and self._inflight.get(key) is job:
                del self._inflight[key]
            self._stats[JobStatus.CANCELLED] += 1
        telemetry.count("service.jobs.cancelled")
        registry = _metrics.get_registry()
        if registry is not None:
            _jobs_total(registry).labels(status="cancelled").inc()
        return True

    # -- dispatcher loop -------------------------------------------------
    def _dispatch_loop(self, index: int) -> None:
        idle_since = time.perf_counter()
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    return
                with job.lock:
                    if job.status.is_terminal():
                        continue
                    job.status = JobStatus.RUNNING
                telemetry.count("service.jobs.started")
                registry = _metrics.get_registry()
                busy_since = time.perf_counter()
                if registry is not None:
                    registry.counter(
                        "service_worker_idle_seconds_total",
                        "dispatcher time spent waiting for work"
                    ).inc(busy_since - idle_since)
                    registry.gauge(
                        "service_workers_busy",
                        "dispatchers currently executing a job").inc()
                    _queue_depth(registry).set(len(self._queue))
                try:
                    self._execute(job, index)
                finally:
                    idle_since = time.perf_counter()
                    if registry is not None:
                        registry.counter(
                            "service_worker_busy_seconds_total",
                            "dispatcher time spent executing jobs"
                        ).inc(idle_since - busy_since)
                        registry.gauge(
                            "service_workers_busy",
                            "dispatchers currently executing a job"
                        ).dec()
        finally:
            self._retire_dispatcher(index)

    def _retire_dispatcher(self, index: int) -> None:
        """Drain this dispatcher's warm worker; last one out closes
        the shared-memory store (covers ``shutdown(wait=False)``)."""
        if self._pool is not None:
            payload = self._pool.drain(index)
            if payload is not None:
                self._merge_drain_payload(payload)
        with self._lock:
            self._active_dispatchers -= 1
            last = self._active_dispatchers == 0
        if last and self._store is not None:
            self._store.close()

    def _execute(self, job: Job, index: int) -> None:
        if self.mode == "process":
            self._execute_batch(job, index)
        else:
            self._execute_inline(job)

    def _fold_batch(self, job: Job, registry) -> List[Job]:
        """The jobs riding this dispatch: the leader plus any queued
        deadline-free jobs on the same model and solver."""
        members = [job]
        if (job.deadline is not None or job.model_key is None
                or self.batch_limit < 2):
            return members
        for member in self._queue.take_matching(
                job.model_key, job.solver, self.batch_limit - 1):
            with member.lock:
                if member.status.is_terminal():
                    continue  # cancelled after take; nothing owed
                member.status = JobStatus.RUNNING
            telemetry.count("service.jobs.started")
            members.append(member)
        folds = len(members) - 1
        if folds:
            telemetry.count("service.jobs.batch_folds", folds)
            if registry is not None:
                registry.counter(
                    "service_batch_folds_total",
                    "queued jobs folded into an in-flight dispatch "
                    "on the same model and solver"
                ).inc(folds)
                _queue_depth(registry).set(len(self._queue))
        return members

    def _execute_batch(self, job: Job, index: int) -> None:
        """Run a job (plus foldable queued jobs) on the warm worker."""
        registry = _metrics.get_registry()
        members = self._fold_batch(job, registry)
        queue_seconds = {member.job_id:
                         member.started_at - member.submitted_at
                         for member in members}
        if registry is not None:
            wait_hist = registry.histogram(
                "service_queue_wait_seconds",
                "wall clock from submit to dispatch")
            for member in members:
                wait_hist.observe(queue_seconds[member.job_id])
        execute_start = time.perf_counter()
        outcome = None
        status = JobStatus.FAILED
        message: Optional[str] = None
        raised: Optional[BaseException] = None
        ref = None
        _flight.flight_event("job", "dispatching",
                             trace_id=job.trace_id, job_id=job.job_id,
                             solver=job.solver, batched=len(members))
        try:
            with _context.activate(job.trace_id, job_id=job.job_id,
                                   stage="dispatch"):
                with telemetry.span(
                        f"service.execute.{job.problem.name}"):
                    ref = self._store.publish(job.problem)
                    outcome = self._pool.execute(
                        index, job,
                        [(member.job_id, member.solver, member.config,
                          member.trace_id)
                         for member in members],
                        ref, deadline=job.deadline,
                        publish_process=(len(members) == 1),
                    )
        except WorkerTimeout as exc:
            status = JobStatus.TIMEOUT
            message = str(exc)
        except WorkerCancelled:
            status = JobStatus.CANCELLED
        except WorkerCrashed as exc:
            message = str(exc)
        except BaseException as exc:  # shm store / protocol failures
            raised = exc
        finally:
            if ref is not None:
                self._store.release(ref)
        elapsed = time.perf_counter() - execute_start
        if registry is not None:
            execute_hist = registry.histogram(
                "service_execute_seconds",
                "wall clock from dispatch to resolution, per solver",
                ("solver",))
            for member in members:
                execute_hist.labels(solver=member.solver).observe(
                    elapsed)
        tracer = telemetry.get_tracer()
        if outcome is not None and tracer is not None:
            kind = "warm" if outcome.model_was_cached else "cold"
            for member in members:
                tracer.instant(
                    "service.job.dispatch", category="service",
                    args={"trace_id": member.trace_id,
                          "job_id": member.job_id,
                          "solver": member.solver,
                          "dispatch": kind,
                          "worker_pid": outcome.pid,
                          "queue_seconds": queue_seconds[member.job_id],
                          "batched": len(members)})
        if outcome is None:
            # The whole round trip failed; every member shares its
            # fate (folded members are deadline-free, so a TIMEOUT /
            # CANCELLED here is always a singleton batch).
            for member in members:
                if status is JobStatus.TIMEOUT:
                    error: Optional[BaseException] = JobTimeoutError(
                        message)
                elif status is JobStatus.CANCELLED:
                    error = JobCancelledError(
                        f"job {member.job_id} cancelled")
                elif raised is not None:
                    error = raised
                else:
                    error = ServiceError(message or "worker failed")
                self._finish(member, status, None, error,
                             queue_seconds[member.job_id], registry)
            return
        for member, payload in zip(members, outcome.results):
            self._finish_member(member, payload, outcome,
                                len(members),
                                queue_seconds[member.job_id], registry)

    def _finish_member(self, member: Job, payload: Dict[str, Any],
                       outcome, batch_size: int,
                       queue_seconds: float, registry) -> None:
        """Decode one compact worker result parent-side and resolve."""
        if not payload["ok"]:
            error = ServiceError(
                f"worker (pid={outcome.pid}) failed job "
                f"{member.job_id}:\n{payload['traceback']}"
            )
            self._finish(member, JobStatus.FAILED, None, error,
                         queue_seconds, registry)
            return
        try:
            samples = expand_samples(payload["samples"])
            solutions = decode_samples(member.problem, samples)
            service_block: Dict[str, Any] = {
                "job_id": member.job_id,
                "mode": self.mode,
                "worker_pid": outcome.pid,
                "queue_seconds": queue_seconds,
                "deadline": member.deadline,
                "coalesced": member.coalesced,
                "cache": ("miss" if member.cache_key is not None
                          else "off"),
                "dispatch": ("warm" if outcome.model_was_cached
                             else "cold"),
                "batched": batch_size,
            }
            if member.trace_id is not None:
                service_block["trace_id"] = member.trace_id
            provenance_extra: Dict[str, Any] = {"service": service_block}
            if payload.get("profile") is not None:
                provenance_extra["profile"] = payload["profile"]
            result = assemble_result(
                member.problem, member.solver, member.config,
                samples, solutions, payload["duration"],
                convergence=payload["convergence"],
                repair=member.repair,
                provenance_extra=provenance_extra,
            )
        except BaseException as exc:  # decode/score hooks can raise
            self._finish(member, JobStatus.FAILED, None, exc,
                         queue_seconds, registry)
            return
        self._finish(member, JobStatus.DONE, result, None,
                     queue_seconds, registry)

    def _execute_inline(self, job: Job) -> None:
        queue_seconds = job.started_at - job.submitted_at
        status = JobStatus.FAILED
        result: Optional[SolveResult] = None
        error: Optional[BaseException] = None
        registry = _metrics.get_registry()
        if registry is not None:
            registry.histogram(
                "service_queue_wait_seconds",
                "wall clock from submit to dispatch"
            ).observe(queue_seconds)
        execute_start = time.perf_counter()
        try:
            with _context.activate(job.trace_id, job_id=job.job_id,
                                   stage="dispatch"):
                with telemetry.span(
                        f"service.execute.{job.problem.name}"):
                    outcome = execute_inline(
                        job, job.problem.model, job.solver, job.config,
                        deadline=job.deadline,
                    )
                    solutions = decode_samples(job.problem,
                                               outcome.samples)
                    service_block: Dict[str, Any] = {
                        "job_id": job.job_id,
                        "mode": self.mode,
                        "worker_pid": outcome.pid,
                        "queue_seconds": queue_seconds,
                        "deadline": job.deadline,
                        "coalesced": job.coalesced,
                        "cache": ("miss" if job.cache_key is not None
                                  else "off"),
                        "dispatch": "inline",
                        "batched": 1,
                    }
                    if job.trace_id is not None:
                        service_block["trace_id"] = job.trace_id
                    result = assemble_result(
                        job.problem, job.solver, job.config,
                        outcome.samples, solutions, outcome.duration,
                        convergence=outcome.convergence,
                        repair=job.repair,
                        provenance_extra={"service": service_block},
                    )
            tracer = telemetry.get_tracer()
            if tracer is not None:
                tracer.instant(
                    "service.job.dispatch", category="service",
                    args={"trace_id": job.trace_id,
                          "job_id": job.job_id,
                          "solver": job.solver,
                          "dispatch": "inline",
                          "worker_pid": outcome.pid,
                          "queue_seconds": queue_seconds,
                          "batched": 1})
            status = JobStatus.DONE
        except WorkerTimeout as exc:
            status = JobStatus.TIMEOUT
            error = JobTimeoutError(str(exc))
        except WorkerCancelled:
            status = JobStatus.CANCELLED
            error = JobCancelledError(f"job {job.job_id} cancelled")
        except WorkerCrashed as exc:
            error = ServiceError(str(exc))
        except BaseException as exc:  # decode/score hooks can raise too
            error = exc
        if registry is not None:
            registry.histogram(
                "service_execute_seconds",
                "wall clock from dispatch to resolution, per solver",
                ("solver",)).labels(solver=job.solver).observe(
                    time.perf_counter() - execute_start)
        self._finish(job, status, result, error, queue_seconds,
                     registry)

    def _finish(self, job: Job, status: JobStatus,
                result: Optional[SolveResult],
                error: Optional[BaseException],
                queue_seconds: float, registry) -> None:
        """Resolve one job: cache, inflight cleanup, stats, counters."""
        if status is JobStatus.DONE and self._cache is not None:
            self._cache.put(job.cache_key, result)
        # Flight recording happens *before* resolve publishes the
        # result: a caller woken by ``handle.result()`` must already
        # find the failure capsule on disk (CI and tests rely on it).
        recorder = _flight.get_flight_recorder()
        if recorder is not None:
            with job.lock:
                if job.status.is_terminal():
                    recorder = None  # another resolver won the race
        if recorder is not None:
            recorder.record(
                "job", status.value, trace_id=job.trace_id,
                job_id=job.job_id, solver=job.solver,
                error=str(error) if error is not None else None)
            if status in (JobStatus.FAILED, JobStatus.TIMEOUT):
                # The black box: a failed or reaped job dumps its
                # correlated recent history as a flight capsule.
                recorder.dump(
                    f"job_{status.value}",
                    trace_id=job.trace_id, job_id=job.job_id,
                    detail={
                        "solver": job.solver,
                        "deadline": job.deadline,
                        "queue_seconds": queue_seconds,
                        "error": (str(error) if error is not None
                                  else None),
                    })
        resolved = job.resolve(status, result=result, error=error)
        with self._lock:
            key = job.cache_key
            if key is not None and self._inflight.get(key) is job:
                del self._inflight[key]
            if resolved:
                self._stats[status] += 1
        if resolved:
            telemetry.count(f"service.jobs.{status.value}")
            if registry is not None:
                _jobs_total(registry).labels(status=status.value).inc()
            if status is JobStatus.DONE:
                telemetry.record("service.queue_seconds", queue_seconds)
            tracer = telemetry.get_tracer()
            if tracer is not None:
                tracer.instant(
                    "service.job.finish", category="service",
                    args={"trace_id": job.trace_id,
                          "job_id": job.job_id,
                          "solver": job.solver,
                          "status": status.value,
                          "queue_seconds": queue_seconds})

    def _merge_drain_payload(self, payload: Dict[str, Any]) -> None:
        """Fold one drained worker's cumulative telemetry/trace/metrics
        into the parent.

        Warm workers accumulate across every job they ran, so each
        worker merges exactly once — at pool drain. (Per-job merging of
        cumulative snapshots would double-count; that is why PR-5's
        per-job merge went away with fork-per-job workers.) A worker
        killed by a deadline or cancel reap never drains — its
        telemetry dies with it.

        The payload's ``jobs`` attribution log (which job/trace each
        merged snapshot covers) is kept on the service and mirrored as
        a ``service.pool.drain_merge`` trace instant, so drain-merged
        worker telemetry stays attributable after the fold.
        """
        jobs = payload.get("jobs") or []
        if jobs:
            with self._lock:
                self._drain_log.append({"pid": payload.get("pid"),
                                        "jobs": list(jobs)})
        collector = telemetry.get_collector()
        if (collector is not None
                and payload.get("telemetry_snapshot") is not None):
            collector.merge_snapshot(payload["telemetry_snapshot"])
            telemetry.count("service.telemetry.merges")
        tracer = telemetry.get_tracer()
        if tracer is not None and payload.get("trace_events"):
            tracer.merge_events(payload["trace_events"],
                                epoch_ns=payload.get("trace_epoch_ns"))
        if tracer is not None and jobs:
            tracer.instant(
                "service.pool.drain_merge", category="service",
                args={"pid": payload.get("pid"),
                      "jobs": [{"job_id": entry.get("job_id"),
                                "trace_id": entry.get("trace_id")}
                               for entry in jobs]})
        registry = _metrics.get_registry()
        if (registry is not None
                and payload.get("metrics_snapshot") is not None):
            registry.merge_snapshot(payload["metrics_snapshot"])
            registry.counter(
                "service_metrics_merges_total",
                "worker metrics snapshots folded into the parent"
            ).inc()

    # -- introspection / lifecycle ---------------------------------------
    def queue_snapshot(self) -> Dict[str, Any]:
        """Live/capacity/closed view of the bounded job queue.

        Cheap enough for per-request use — the HTTP front end's
        admission controller polls it on every submission to apply
        queue-depth backpressure *before* enqueueing.
        """
        return self._queue.snapshot()

    def stats(self) -> Dict[str, Any]:
        """Point-in-time service statistics (counts, queue, cache)."""
        with self._lock:
            jobs = {status.value: count
                    for status, count in self._stats.items()
                    if status.is_terminal()}
            jobs["submitted"] = self._next_id
            jobs["coalesced"] = self._coalesced
            jobs["cache_hits_served"] = self._cache_hits_served
            inflight = len(self._inflight)
            drains = [dict(entry) for entry in self._drain_log]
        return {
            "drains": drains,
            "mode": self.mode,
            "max_workers": self.max_workers,
            "jobs": jobs,
            "inflight_keys": inflight,
            "queue": self._queue.snapshot(),
            "cache": (self._cache.snapshot()
                      if self._cache is not None else None),
            "pool": (self._pool.snapshot()
                     if self._pool is not None else None),
            "shm": (self._store.snapshot()
                    if self._store is not None else None),
        }

    def shutdown(self, wait: bool = True,
                 cancel_pending: bool = False) -> None:
        """Stop accepting jobs; optionally wait for the pool to drain.

        ``cancel_pending=True`` additionally cancels every job still
        queued (running jobs finish or are reaped by their deadlines).
        """
        self._shutdown = True
        if cancel_pending:
            with self._lock:
                pending = list(self._inflight.values())
            for job in pending:
                self._cancel_job(job)
        self._queue.close()
        if wait:
            for thread in self._dispatchers:
                thread.join()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(wait=True)
        return False

    def __repr__(self) -> str:
        return (f"SolveService(max_workers={self.max_workers}, "
                f"mode={self.mode!r}, queue={len(self._queue)})")
