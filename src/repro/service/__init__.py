"""repro.service: a concurrent solve service over the compile layer.

The :mod:`repro.compile` registry answers "solve this problem with
that solver" one blocking call at a time. This package turns that
into a managed subsystem — the shape a database optimizer actually
consumes solvers in, where many candidate subproblems are in flight
at once under latency budgets:

* :class:`SolveService` — bounded priority job queue feeding a
  *persistent warm worker pool* (solver registry imported once per
  worker, models shipped via shared memory, hard deadline reaping
  with respawn) or threads, with :class:`JobHandle` futures,
  cancellation, cross-job batching of same-model submissions and
  batch :meth:`~SolveService.solve_many`.
* :class:`ResultCache` — content-addressed LRU over
  :meth:`CompiledProblem.content_key` + solver + config + seed, with
  in-flight request coalescing.
* :func:`race` — portfolio mode: several registry solvers race the
  same problem, first feasible result wins, losers are cancelled.
* Worker telemetry (spans, counters, trace events, convergence rows)
  merges back into the parent collector/tracer, so one report and one
  Perfetto timeline cover the whole pool.

Quick start::

    from repro.service import SolveService
    from repro.compile import SolverConfig

    with SolveService(max_workers=4) as service:
        handle = service.submit(problem, "sa",
                                SolverConfig(seed=7), deadline=5.0)
        result = handle.result()           # SolveResult, as ever
        results = service.solve_many(problems)       # batch, ordered
        best = service.solve_portfolio(problem)      # sa/tabu/pt race

``python -m repro.experiments serve-bench`` exercises the full stack
and verifies service results are bit-for-bit identical to sequential
:func:`repro.compile.solve` calls.
"""

from .cache import ResultCache, ShardedResultCache, cache_key
from .pool import SharedModelStore, WarmWorkerPool
from .portfolio import PortfolioError, race
from .queue import Job, JobQueue, JobStatus, QueueFullError
from .service import (
    JobCancelledError,
    JobHandle,
    JobTimeoutError,
    ServiceError,
    SolveService,
)
from .workers import (
    WorkerCancelled,
    WorkerCrashed,
    WorkerTimeout,
)

__all__ = [
    "Job",
    "JobCancelledError",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "JobTimeoutError",
    "PortfolioError",
    "QueueFullError",
    "ResultCache",
    "ServiceError",
    "ShardedResultCache",
    "SharedModelStore",
    "SolveService",
    "WarmWorkerPool",
    "WorkerCancelled",
    "WorkerCrashed",
    "WorkerTimeout",
    "cache_key",
    "race",
]
