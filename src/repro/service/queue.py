"""Bounded priority job queue for the solve service.

Jobs are ordered by descending priority, FIFO within a priority class
(a monotonically increasing sequence number breaks ties, so two jobs
at the same priority dequeue in submission order). The queue is
bounded: :meth:`JobQueue.put` raises :class:`QueueFullError` — or
blocks up to a timeout when asked — once the number of *live* (not yet
dequeued, not cancelled) jobs reaches capacity, which is the service's
backpressure mechanism under heavy traffic.

Cancellation is lazy: a cancelled job stays in the heap but is
discarded by :meth:`JobQueue.get` when it surfaces, while the live
count is released immediately so cancellations free capacity right
away.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity."""


class JobStatus(enum.Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"      #: queued, waiting for a worker
    RUNNING = "running"      #: executing on a worker
    DONE = "done"            #: finished; result available
    FAILED = "failed"        #: worker raised; exception available
    CANCELLED = "cancelled"  #: cancelled before (or while) running
    TIMEOUT = "timeout"      #: blew its deadline; worker was reaped

    def is_terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED,
                        JobStatus.CANCELLED, JobStatus.TIMEOUT)


@dataclass
class Job:
    """Internal record of one submitted solve.

    The service resolves a job exactly once (result *or* error), under
    ``lock``; ``event`` wakes every handle waiting on it — including
    handles of coalesced duplicate submissions, which share this one
    record.
    """

    job_id: int
    problem: Any
    solver: str
    config: Any
    repair: bool = False
    priority: int = 0
    deadline: Optional[float] = None
    cache_key: Optional[str] = None
    #: ``problem.content_key()`` — the warm pool's batch folding and
    #: shared-memory store both key on it, so it is computed once at
    #: submit and carried on the job.
    model_key: Optional[str] = None
    #: Trace-context id correlating this job's events across layers
    #: (queue, dispatch, worker, cache); ``None`` when the context
    #: layer is disabled at submit time.
    trace_id: Optional[str] = None
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Set (under ``lock``) by ``JobQueue.get`` when a dispatcher takes
    #: the job; tells ``cancel`` whether a queue slot is still held.
    dequeued: bool = False
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    status: JobStatus = JobStatus.PENDING
    result: Any = None
    error: Optional[BaseException] = None
    coalesced: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    event: threading.Event = field(default_factory=threading.Event)
    #: Set by the dispatcher while a worker process runs this job, so
    #: ``cancel`` can reap it mid-flight.
    process: Any = None
    #: Callbacks fired (outside the job lock) on resolution; the
    #: portfolio racer uses these to observe completion order.
    callbacks: List[Callable[["Job"], None]] = field(
        default_factory=list)

    def resolve(self, status: JobStatus, result: Any = None,
                error: Optional[BaseException] = None) -> bool:
        """Transition to a terminal status exactly once.

        Returns False when the job was already terminal (e.g. a
        cancellation raced the worker finishing) — the first
        resolution wins and later ones are dropped.
        """
        with self.lock:
            if self.status.is_terminal():
                return False
            self.status = status
            self.result = result
            self.error = error
            self.finished_at = time.perf_counter()
            callbacks = list(self.callbacks)
        self.event.set()
        for callback in callbacks:
            callback(self)
        return True

    def add_callback(self, callback: Callable[["Job"], None]) -> None:
        """Run ``callback(job)`` on resolution (immediately if done)."""
        with self.lock:
            if not self.status.is_terminal():
                self.callbacks.append(callback)
                return
        callback(self)


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` records."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Job]] = []
        self._live = 0
        self._sequence = itertools.count()
        self._closed = False

    def put(self, job: Job, block: bool = False,
            timeout: Optional[float] = None) -> None:
        """Enqueue a job; raises :class:`QueueFullError` at capacity.

        ``block=True`` waits up to ``timeout`` seconds for capacity
        instead of raising immediately.
        """
        with self._lock:
            if block:
                deadline = (None if timeout is None
                            else time.perf_counter() + timeout)
                while self._live >= self.capacity and not self._closed:
                    remaining = (None if deadline is None
                                 else deadline - time.perf_counter())
                    if remaining is not None and remaining <= 0:
                        break
                    self._not_full.wait(remaining)
            if self._closed:
                raise RuntimeError("queue is closed")
            if self._live >= self.capacity:
                raise QueueFullError(
                    f"job queue is full ({self.capacity} live jobs); "
                    "raise queue_capacity, add workers, or submit with "
                    "block=True"
                )
            heapq.heappush(self._heap,
                           (-job.priority, next(self._sequence), job))
            self._live += 1
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the highest-priority live job.

        Cancelled jobs surfacing at the top are discarded silently.
        Returns ``None`` when the queue is closed and drained, or on
        timeout.
        """
        deadline = (None if timeout is None
                    else time.perf_counter() + timeout)
        with self._lock:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    with job.lock:
                        cancelled = job.status.is_terminal()
                        if not cancelled:
                            job.dequeued = True
                            job.started_at = time.perf_counter()
                    if cancelled:
                        # Its capacity slot was already freed by
                        # release() when the cancellation landed.
                        continue
                    self._live -= 1
                    self._not_full.notify()
                    return job
                if self._closed:
                    return None
                remaining = (None if deadline is None
                             else deadline - time.perf_counter())
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def take_matching(self, model_key: str, solver: str,
                      limit: int) -> List[Job]:
        """Pull up to ``limit`` queued jobs foldable into one dispatch.

        A job folds when it targets the *same model* (``model_key``)
        and the *same solver*, and carries **no deadline** — folded
        members share the leader's worker round trip, so a member with
        its own deadline could not be reaped independently. Matching
        jobs are marked dequeued/started exactly as :meth:`get` would
        and removed from the heap; the scan is O(queue) but only runs
        when a dispatcher has just taken a deadline-free job.
        """
        if limit <= 0:
            return []
        taken: List[Job] = []
        with self._lock:
            if not self._heap:
                return taken
            keep: List[Tuple[int, int, Job]] = []
            # Drain in heap (priority) order so folding preserves the
            # priority-FIFO dequeue discipline among the matches.
            while self._heap and len(taken) < limit:
                entry = heapq.heappop(self._heap)
                job = entry[2]
                with job.lock:
                    if job.status.is_terminal():
                        continue  # lazy-discard, slot already released
                    if (job.model_key == model_key
                            and job.solver == solver
                            and job.deadline is None):
                        job.dequeued = True
                        job.started_at = time.perf_counter()
                        taken.append(job)
                        continue
                keep.append(entry)
            keep.extend(self._heap)
            heapq.heapify(keep)
            self._heap = keep
            if taken:
                self._live -= len(taken)
                self._not_full.notify(len(taken))
        return taken

    def release(self, job: Job) -> None:
        """Free the capacity slot of a job cancelled while queued."""
        with self._lock:
            # The job itself is discarded lazily by get(); only the
            # accounting is updated here.
            if self._live > 0:
                self._live -= 1
                self._not_full.notify()

    def close(self) -> None:
        """Stop accepting jobs and wake every blocked getter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def __len__(self) -> int:
        with self._lock:
            return self._live

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"live": self._live, "capacity": self.capacity,
                    "closed": self._closed}
