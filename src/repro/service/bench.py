"""``serve-bench``: exercise the solve service end to end.

Usage::

    python -m repro.experiments serve-bench
    python -m repro.experiments serve-bench --workers 4 --jobs 16
    python -m repro.experiments serve-bench --mode thread
    python -m repro.experiments serve-bench --trace service_trace.json
    python -m repro.experiments serve-bench --portfolio

The benchmark builds a batch of independent seeded join-order
problems, solves them twice — sequentially through
:func:`repro.compile.solve`, then concurrently through
:meth:`SolveService.solve_many` — and **verifies the two result sets
bit for bit** (same best solution, same energy, same per-read energy
vector under the same seeds). It then resubmits the batch to
demonstrate the content-addressed cache, and optionally races a solver
portfolio. Exit status is nonzero on any mismatch, infeasible result
or cache miss on resubmission, which is what makes this a CI smoke
job and not just a demo.

``--trace FILE`` records the run as Chrome ``trace_event`` JSON with
the worker processes' timelines merged onto the parent's — open it in
Perfetto to see jobs fan out across worker pids.

``--metrics`` enables the live-metrics registry for the service run
(queue-wait/exec-time histograms, cache and job counters, worker
utilization) and prints a short summary; ``--metrics-out`` writes the
Prometheus text exposition, ``--metrics-json`` the
``repro-metrics/v1`` snapshot (the input of ``metrics-report``),
``--metrics-jsonl`` streams periodic sampler snapshots during the run,
and ``--slo`` evaluates the default health ruleset — a ``fail``
status fails the benchmark like any other check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List

import numpy as np

from .. import telemetry
from ..telemetry import context as _tracectx
from ..telemetry import flight as _flight
from ..telemetry import health as _health
from ..telemetry import metrics as _metrics
from ..telemetry import profiler as _profiler
from ..telemetry.sampler import MetricsSampler
from ..compile import SolverConfig, solve
from ..db.joinorder import JoinOrderQUBO
from ..db.workloads import TOPOLOGIES, random_join_graph
from .service import JobTimeoutError, SolveService

__all__ = ["build_jobs", "main", "results_match"]


def build_jobs(count: int, relations: int, sweeps: int, reads: int,
               seed: int) -> List[tuple]:
    """``count`` independent seeded (problem, config) pairs.

    Topologies cycle through the standard query shapes so the batch is
    not one workload repeated; every job gets its own derived seed, so
    the batch is deterministic end to end.
    """
    jobs = []
    for index in range(count):
        graph = random_join_graph(
            relations, TOPOLOGIES[index % len(TOPOLOGIES)],
            seed=seed + index,
        )
        problem = JoinOrderQUBO(graph).compile()
        config = SolverConfig(num_sweeps=sweeps, num_reads=reads,
                              seed=seed * 1000 + index)
        jobs.append((problem, config))
    return jobs


def results_match(first, second) -> bool:
    """Bit-for-bit equality of two :class:`SolveResult` records."""
    return (first.solution == second.solution
            and first.energy == second.energy
            and first.feasible == second.feasible
            and np.array_equal(first.energies, second.energies))


def _print_table(rows: List[Dict[str, Any]]) -> None:
    header = f"{'job':>3}  {'topology':<8} {'energy':>14}  " \
             f"{'feasible':<8} {'match':<5} {'worker pid':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['job']:>3}  {row['topology']:<8} "
              f"{row['energy']:>14.6g}  {str(row['feasible']):<8} "
              f"{str(row['match']):<5} {row['worker_pid']:>10}")


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve-bench",
        description="Solve-service smoke benchmark: concurrent batch "
                    "vs sequential baseline, bit-for-bit verified.",
    )
    parser.add_argument("--jobs", type=int, default=8,
                        help="independent problems in the batch "
                             "(default 8)")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker slots (default 2)")
    parser.add_argument("--mode", choices=("process", "thread"),
                        default="process",
                        help="worker execution mode (default process)")
    parser.add_argument("--relations", type=int, default=5,
                        help="relations per join graph (default 5)")
    parser.add_argument("--sweeps", type=int, default=300,
                        help="annealing sweeps per job (default 300)")
    parser.add_argument("--reads", type=int, default=4,
                        help="reads per job (default 4)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed for problems and solvers")
    parser.add_argument("--solver", default="sa",
                        help="registry solver for the batch "
                             "(default sa)")
    parser.add_argument("--portfolio", action="store_true",
                        help="additionally race sa/tabu/pt on the "
                             "first problem")
    parser.add_argument("--telemetry", action="store_true",
                        help="print the merged telemetry report")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a merged Chrome trace_event "
                             "timeline (implies --telemetry)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="write the benchmark record as JSON")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the live-metrics registry and "
                             "print a summary")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write the Prometheus text exposition "
                             "(implies --metrics)")
    parser.add_argument("--metrics-json", metavar="FILE",
                        help="write the repro-metrics/v1 JSON snapshot "
                             "(implies --metrics)")
    parser.add_argument("--metrics-jsonl", metavar="FILE",
                        help="stream periodic sampler snapshots to a "
                             "JSONL file during the run (implies "
                             "--metrics)")
    parser.add_argument("--metrics-interval", type=float, default=0.2,
                        metavar="SECONDS",
                        help="sampler interval for --metrics-jsonl "
                             "(default %(default)s)")
    parser.add_argument("--slo", action="store_true",
                        help="evaluate the default SLO ruleset against "
                             "the run's metrics; a fail status fails "
                             "the benchmark (implies --metrics)")
    parser.add_argument("--context", action="store_true",
                        help="enable trace-context propagation: every "
                             "job gets a trace_id correlating queue, "
                             "dispatch, worker and trace events "
                             "(obs-report joins on it)")
    parser.add_argument("--flight", metavar="DIR",
                        help="enable the flight recorder, dumping "
                             "repro-flight/v1 capsules for failed/"
                             "timed-out jobs into DIR (implies "
                             "--context)")
    parser.add_argument("--force-timeout", action="store_true",
                        help="additionally submit one oversized job "
                             "with a tiny deadline so it is reaped — "
                             "exercises the TIMEOUT path and, with "
                             "--flight, asserts a capsule was dumped")
    parser.add_argument("--profile", action="store_true",
                        help="enable the sampling wall-clock profiler "
                             "for every solve (summaries land in "
                             "result provenance and the trace)")
    args = parser.parse_args(argv)

    use_telemetry = args.telemetry or args.trace is not None
    collector = telemetry.enable() if use_telemetry else None
    tracer = (telemetry.enable_tracing()
              if args.trace is not None else None)
    use_metrics = (args.metrics or args.slo
                   or args.metrics_out is not None
                   or args.metrics_json is not None
                   or args.metrics_jsonl is not None)
    registry = _metrics.enable_metrics() if use_metrics else None
    sampler = None
    if args.metrics_jsonl is not None:
        sampler = MetricsSampler(args.metrics_jsonl,
                                 interval=args.metrics_interval,
                                 registry=registry).start()
    use_context = args.context or args.flight is not None
    context_state = _tracectx.enable_context() if use_context else None
    recorder = (_flight.enable_flight(dump_dir=args.flight)
                if args.flight is not None else None)
    if args.profile:
        _profiler.enable_profiling()

    jobs = build_jobs(args.jobs, args.relations, args.sweeps,
                      args.reads, args.seed)

    print(f"serve-bench: {args.jobs} jobs, {args.workers} "
          f"{args.mode} workers, solver {args.solver!r}, "
          f"cpu_count={os.cpu_count()}")

    sequential_start = time.perf_counter()
    baseline = [solve(problem, args.solver, config=config)
                for problem, config in jobs]
    sequential_seconds = time.perf_counter() - sequential_start

    failures = 0
    with SolveService(max_workers=args.workers,
                      mode=args.mode) as service:
        service_start = time.perf_counter()
        results = service.solve_many(
            [(problem, args.solver, config)
             for problem, config in jobs])
        service_seconds = time.perf_counter() - service_start

        rows = []
        for index, (result, base) in enumerate(zip(results, baseline)):
            match = results_match(result, base)
            if not (match and result.feasible):
                failures += 1
            rows.append({
                "job": index,
                "topology": TOPOLOGIES[index % len(TOPOLOGIES)],
                "energy": result.energy,
                "feasible": result.feasible,
                "match": match,
                "worker_pid": result.provenance["service"]["worker_pid"],
            })
        _print_table(rows)

        speedup = (sequential_seconds / service_seconds
                   if service_seconds > 0 else float("inf"))
        print(f"\nsequential {sequential_seconds:.3f}s   "
              f"service {service_seconds:.3f}s   "
              f"speedup {speedup:.2f}x")

        # Resubmit the identical batch: every job must now be served
        # from the content-addressed cache without re-execution.
        resubmit = service.solve_many(
            [(problem, args.solver, config)
             for problem, config in jobs])
        cache_hits = sum(
            1 for result in resubmit
            if result.provenance["service"].get("cache") == "hit")
        cache = service.stats()["cache"]
        print(f"resubmission: {cache_hits}/{len(jobs)} served from "
              f"cache ({cache['entries']} entries, "
              f"{cache['hits']} hits, {cache['misses']} misses)")
        if cache_hits != len(jobs):
            failures += 1
        if any(not results_match(first, second)
               for first, second in zip(results, resubmit)):
            failures += 1

        # Cross-job batching demo: same model, distinct seeds — the
        # warm pool folds these into a few round trips, and the
        # results must still match per-seed sequential solves.
        fold_record = None
        if args.mode == "process":
            fold_problem, _ = jobs[0]
            fold_configs = [
                SolverConfig(num_sweeps=args.sweeps,
                             num_reads=args.reads,
                             seed=args.seed * 2000 + index)
                for index in range(args.jobs)
            ]
            fold_base = [solve(fold_problem, args.solver, config=c)
                         for c in fold_configs]
            fold_handles = [service.submit(fold_problem, args.solver, c)
                            for c in fold_configs]
            fold_results = [handle.result(timeout=600)
                            for handle in fold_handles]
            fold_ok = all(
                results_match(first, second) for first, second
                in zip(fold_base, fold_results))
            if not fold_ok:
                failures += 1
            max_batch = max(r.provenance["service"]["batched"]
                            for r in fold_results)
            fold_record = {
                "jobs": args.jobs,
                "max_batch": max_batch,
                "bit_for_bit": fold_ok,
            }
            print(f"batch folding: {args.jobs} same-model jobs, "
                  f"largest batch {max_batch}, "
                  f"bit-for-bit={fold_ok}")

        # Forced-failure path: an oversized job with a tiny deadline
        # must be reaped as TIMEOUT and (with --flight) leave a
        # correlated capsule behind — the failure-observability smoke.
        timeout_record = None
        if args.force_timeout:
            if args.mode != "process":
                print("force-timeout: skipped (deadline reaping needs "
                      "process mode)")
            else:
                heavy_problem, _ = jobs[0]
                heavy_config = SolverConfig(num_sweeps=200_000,
                                            num_reads=8,
                                            seed=args.seed + 999)
                handle = service.submit(heavy_problem, args.solver,
                                        heavy_config, deadline=0.1)
                timed_out = False
                try:
                    handle.result(timeout=120)
                except JobTimeoutError:
                    timed_out = True
                except Exception as error:
                    print(f"force-timeout: unexpected {error!r}",
                          file=sys.stderr)
                capsule_path = None
                if recorder is not None:
                    for capsule in recorder.capsules:
                        if capsule.get("job_id") != handle.job_id:
                            continue
                        capsule_path = capsule.get("path")
                        problems = _flight.validate_flight_document(
                            capsule)
                        for problem in problems:
                            print(f"flight capsule INVALID: {problem}",
                                  file=sys.stderr)
                            failures += 1
                if not timed_out:
                    failures += 1
                if recorder is not None and capsule_path is None:
                    failures += 1
                timeout_record = {
                    "job_id": handle.job_id,
                    "trace_id": handle.trace_id,
                    "timed_out": timed_out,
                    "capsule": capsule_path,
                }
                print(f"force-timeout: job {handle.job_id} "
                      f"trace {handle.trace_id or '-'} "
                      f"timed_out={timed_out}"
                      + (f", capsule {capsule_path}"
                         if capsule_path else ""))

        portfolio_record = None
        if args.portfolio:
            problem, config = jobs[0]
            winner = service.solve_portfolio(
                problem, solvers=("sa", "tabu", "pt"), config=config)
            record = winner.provenance["portfolio"]
            print(f"portfolio: winner {record['winner']!r} "
                  f"(feasible={winner.feasible}, "
                  f"energy={winner.energy:.6g}, "
                  f"cancelled {record['cancelled']} losers)")
            if not winner.feasible:
                failures += 1
            portfolio_record = record

        stats = service.stats()
        if stats.get("pool") is not None:
            pool = stats["pool"]
            shm = stats["shm"]
            print(f"pool: {pool['size']} warm workers, "
                  f"{pool['jobs_run']} jobs, "
                  f"{pool['dispatches_warm']} warm / "
                  f"{pool['dispatches_cold']} cold dispatches, "
                  f"{pool['respawns']} respawns; "
                  f"shm {shm['segments_created']} segment(s), "
                  f"{shm['bytes_shared']} bytes")

    if collector is not None:
        print()
        print(telemetry.render_report(collector))
    if tracer is not None:
        trace_path = os.path.abspath(args.trace)
        worker_pids = {event.get("pid") for event in tracer.events()}
        tracer.write_chrome_trace(trace_path, metadata={
            "schema": "repro-trace/v1",
            "serve_bench": {"jobs": args.jobs,
                            "workers": args.workers,
                            "mode": args.mode},
            "event_count": tracer.event_count,
        })
        print(f"wrote trace {trace_path} ({tracer.event_count} events "
              f"across {len(worker_pids)} pids)")
        telemetry.disable_tracing()
    if collector is not None:
        telemetry.disable()

    metrics_snapshot = None
    if registry is not None:
        if sampler is not None:
            samples = sampler.stop()
            print(f"wrote {samples} sampler snapshot(s) to "
                  f"{os.path.abspath(args.metrics_jsonl)}")
        metrics_snapshot = registry.snapshot()
        lookup = _health._SnapshotLookup(metrics_snapshot)
        try:
            queue_p95 = lookup.hist_quantile(
                "service_queue_wait_seconds", 0.95, {})
            exec_p95 = lookup.hist_quantile(
                "service_execute_seconds", 0.95,
                {"solver": args.solver})
            print(f"metrics: queue wait p95 {queue_p95 * 1e3:.2f}ms, "
                  f"execute p95 {exec_p95 * 1e3:.1f}ms "
                  f"({args.solver})")
        except Exception:
            pass
        if args.metrics_out is not None:
            text = registry.to_prometheus()
            problems = _metrics.validate_prometheus_text(text)
            if problems:
                for problem in problems:
                    print(f"metrics INVALID: {problem}",
                          file=sys.stderr)
                failures += 1
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {os.path.abspath(args.metrics_out)}")
        if args.metrics_json is not None:
            with open(args.metrics_json, "w",
                      encoding="utf-8") as handle:
                handle.write(registry.to_json())
                handle.write("\n")
            print(f"wrote {os.path.abspath(args.metrics_json)}")
        if args.slo:
            report = _health.evaluate_rules(_health.DEFAULT_SLO_RULES,
                                            metrics_snapshot)
            print(report.render())
            if report.status == "fail":
                failures += 1
        _metrics.disable_metrics()

    obs_record = None
    if use_context:
        obs_record = {
            "contexts_minted": context_state.minted,
            "flight_dir": (os.path.abspath(args.flight)
                           if args.flight is not None else None),
            "flight_capsules": (len(recorder.capsules)
                                if recorder is not None else 0),
            "forced_timeout": timeout_record,
        }
        print(f"context: {context_state.minted} context(s) minted"
              + (f", {len(recorder.capsules)} flight capsule(s) in "
                 f"{os.path.abspath(args.flight)}"
                 if recorder is not None else ""))
    if args.profile:
        _profiler.disable_profiling()
    if recorder is not None:
        _flight.disable_flight()
    if context_state is not None:
        _tracectx.disable_context()

    if args.json_out is not None:
        document = {
            "schema": "repro-serve-bench/v1",
            "jobs": args.jobs,
            "workers": args.workers,
            "mode": args.mode,
            "solver": args.solver,
            "cpu_count": os.cpu_count(),
            "sequential_seconds": sequential_seconds,
            "service_seconds": service_seconds,
            "speedup": speedup,
            "matches_direct": failures == 0,
            "cache": cache,
            "service_stats": stats,
            "batch_folding": fold_record,
            "portfolio": portfolio_record,
            "metrics": metrics_snapshot,
            "obs": obs_record,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True,
                      default=repr)
            handle.write("\n")
        print(f"wrote {os.path.abspath(args.json_out)}")

    if failures:
        print(f"serve-bench FAILED ({failures} check(s) failed)",
              file=sys.stderr)
        return 1
    print("serve-bench OK: service results are bit-for-bit identical "
          "to sequential solves")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main(sys.argv[1:]))
