"""Worker execution: run one solve in-process or in a reaped subprocess.

The service's dispatcher threads call :func:`execute` with a *bare
model* plus a registry solver name and a resolved
:class:`~repro.compile.SolverConfig` — never a
:class:`~repro.compile.CompiledProblem`, whose decode/score closures
do not pickle. Decoding happens parent-side, which is also what makes
service results bit-for-bit identical to sequential
:func:`repro.compile.solve` calls.

Two modes:

* ``thread`` — the backend runs inline on the dispatcher thread.
  Telemetry flows into the process-global collector/tracer as usual.
  Deadlines are *soft*: Python threads cannot be preempted, so an
  overdue job is detected after the fact and its result discarded.
* ``process`` — the job runs in a fresh worker process (one per job;
  with the default ``fork`` start method a worker costs milliseconds).
  Deadlines are *hard*: a worker that blows its deadline is terminated
  (``SIGTERM``, then ``SIGKILL``) and reaped, so a wedged solver can
  never hang the service. The child runs with its own collector /
  tracer mirroring the parent's enablement and ships the snapshot back
  in the result payload; the parent merges it (see
  :meth:`Collector.merge_snapshot` / :meth:`Tracer.merge_events`).
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..compile.dispatch import SolverConfig, run_registry_backend
from ..telemetry import metrics as _metrics
from ..telemetry.collector import Collector
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.progress import ProgressTrace
from ..telemetry.trace import Tracer

#: Seconds granted for a terminated worker to exit before escalating
#: from SIGTERM to SIGKILL.
REAP_GRACE_SECONDS = 1.0


class WorkerTimeout(Exception):
    """The job blew its deadline; the worker (if any) was reaped."""


class WorkerCancelled(Exception):
    """The job was cancelled while running; the worker was reaped."""


class WorkerCrashed(Exception):
    """The worker process died or raised; carries the child traceback."""


@dataclass
class WorkerOutcome:
    """Everything a worker ships back from one backend run."""

    samples: Any
    convergence: Optional[List[Dict[str, Any]]]
    duration: float
    pid: int
    telemetry_snapshot: Optional[Dict[str, Any]] = None
    trace_events: Optional[List[Dict[str, Any]]] = None
    trace_epoch_ns: Optional[int] = None
    metrics_snapshot: Optional[Dict[str, Any]] = None


def run_backend_payload(model: Any, solver: str, config: SolverConfig,
                        capture_telemetry: bool = False,
                        capture_trace: bool = False,
                        capture_metrics: bool = False) -> WorkerOutcome:
    """Run one registry backend and package the outcome.

    When capture flags are set a *fresh* collector/tracer/metrics
    registry is installed globally first — in a worker process that
    global state is private to the child, so this cleanly scopes
    capture to the one job.
    """
    collector: Optional[Collector] = None
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    if capture_telemetry:
        collector = telemetry.enable(Collector())
    if capture_trace:
        tracer = telemetry.enable_tracing(Tracer())
    if capture_metrics:
        registry = _metrics.enable_metrics(MetricsRegistry())
    progress = (ProgressTrace(label=solver)
                if config.convergence_active() else None)
    start = time.perf_counter()
    with telemetry.span(f"service.worker.{solver}"):
        samples = run_registry_backend(model, solver, config, progress)
    duration = time.perf_counter() - start
    if progress is not None:
        progress.note_truncation()
    return WorkerOutcome(
        samples=samples,
        convergence=progress.rows() if progress is not None else None,
        duration=duration,
        pid=os.getpid(),
        telemetry_snapshot=(collector.snapshot()
                            if collector is not None else None),
        trace_events=tracer.events() if tracer is not None else None,
        trace_epoch_ns=tracer.epoch_ns if tracer is not None else None,
        metrics_snapshot=(registry.snapshot()
                          if registry is not None else None),
    )


def _child_main(connection, model: Any, solver: str,
                config: SolverConfig, capture_telemetry: bool,
                capture_trace: bool, capture_metrics: bool) -> None:
    """Worker-process entry point: run, ship the outcome, exit."""
    try:
        outcome = run_backend_payload(
            model, solver, config,
            capture_telemetry=capture_telemetry,
            capture_trace=capture_trace,
            capture_metrics=capture_metrics,
        )
        connection.send(("ok", outcome))
    except BaseException:
        try:
            connection.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        connection.close()


class ProcessReaped(Exception):
    """Internal: the parent killed the worker (deadline or cancel)."""


def execute_in_process(job, model: Any, solver: str,
                       config: SolverConfig,
                       context: multiprocessing.context.BaseContext,
                       deadline: Optional[float] = None
                       ) -> WorkerOutcome:
    """Run the backend in a dedicated worker process, reaped on deadline.

    ``job`` is the service's :class:`~repro.service.queue.Job`; its
    ``process`` slot is published while the worker lives so a
    concurrent ``cancel()`` can terminate it. Raises
    :class:`WorkerTimeout` when the deadline expires,
    :class:`WorkerCancelled` when the job was cancelled mid-flight and
    :class:`WorkerCrashed` on any worker-side failure.
    """
    capture_telemetry = telemetry.get_collector() is not None
    capture_trace = telemetry.get_tracer() is not None
    capture_metrics = _metrics.get_registry() is not None
    parent_conn, child_conn = context.Pipe(duplex=False)
    process = context.Process(
        target=_child_main,
        args=(child_conn, model, solver, config, capture_telemetry,
              capture_trace, capture_metrics),
        daemon=True,
    )
    process.start()
    worker_pid = process.pid
    child_conn.close()
    with job.lock:
        job.process = process
        already_terminal = job.status.is_terminal()
    if already_terminal:  # cancel() landed between dequeue and start
        _reap(process)
        parent_conn.close()
        raise WorkerCancelled(f"job {job.job_id} cancelled")
    try:
        expires = (None if deadline is None
                   else time.perf_counter() + deadline)
        while True:
            remaining = (None if expires is None
                         else expires - time.perf_counter())
            if remaining is not None and remaining <= 0:
                _reap(process)
                raise WorkerTimeout(
                    f"job {job.job_id} ({solver}) exceeded its "
                    f"{deadline:g}s deadline; worker "
                    f"pid={worker_pid} reaped"
                )
            if parent_conn.poll(min(remaining, 0.05)
                                if remaining is not None else 0.05):
                break
            if not process.is_alive() and not parent_conn.poll():
                with job.lock:
                    cancelled = job.status.is_terminal()
                if cancelled:
                    raise WorkerCancelled(
                        f"job {job.job_id} cancelled; worker reaped"
                    )
                raise WorkerCrashed(
                    f"worker pid={worker_pid} for job {job.job_id} "
                    f"died with exit code {process.exitcode} before "
                    "reporting a result"
                )
        try:
            status, payload = parent_conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrashed(
                f"worker pid={worker_pid} for job {job.job_id} closed "
                f"the result pipe: {error}"
            ) from error
        if status != "ok":
            raise WorkerCrashed(
                f"job {job.job_id} ({solver}) failed in worker "
                f"pid={worker_pid}:\n{payload}"
            )
        return payload
    finally:
        with job.lock:
            job.process = None
        parent_conn.close()
        _reap(process)


def execute_inline(job, model: Any, solver: str, config: SolverConfig,
                   deadline: Optional[float] = None) -> WorkerOutcome:
    """Run the backend on the calling (dispatcher) thread.

    Telemetry/tracing flow into the process-global state directly, so
    the outcome carries no snapshot to merge. The deadline is soft:
    checked after the run, raising :class:`WorkerTimeout` and
    discarding the (already computed) result for uniform semantics.
    """
    progress = (ProgressTrace(label=solver)
                if config.convergence_active() else None)
    start = time.perf_counter()
    with telemetry.span(f"service.worker.{solver}"):
        samples = run_registry_backend(model, solver, config, progress)
    duration = time.perf_counter() - start
    if progress is not None:
        progress.note_truncation()
    if deadline is not None and duration > deadline:
        raise WorkerTimeout(
            f"job {job.job_id} ({solver}) exceeded its {deadline:g}s "
            f"deadline (ran {duration:.3f}s); thread workers enforce "
            "deadlines post-hoc — use mode='process' for hard reaping"
        )
    return WorkerOutcome(
        samples=samples,
        convergence=progress.rows() if progress is not None else None,
        duration=duration,
        pid=os.getpid(),
    )


def _reap(process) -> None:
    """Terminate and join a worker process, escalating to SIGKILL.

    Idempotent: a second call on an already-closed Process object is a
    no-op (``is_alive`` raises ValueError once closed).
    """
    try:
        alive = process.is_alive()
    except ValueError:
        return
    if alive:
        process.terminate()
        process.join(REAP_GRACE_SECONDS)
        if process.is_alive():
            process.kill()
            process.join(REAP_GRACE_SECONDS)
    else:
        process.join(REAP_GRACE_SECONDS)
    # Release the Process object's pipe/sentinel file descriptors.
    if hasattr(process, "close"):
        try:
            process.close()
        except ValueError:
            pass
