"""Inline worker execution plus the shared reaping primitives.

The service's dispatcher threads execute with a *bare model* plus a
registry solver name and a resolved
:class:`~repro.compile.SolverConfig` — never a
:class:`~repro.compile.CompiledProblem`, whose decode/score closures
do not pickle. Decoding happens parent-side, which is also what makes
service results bit-for-bit identical to sequential
:func:`repro.compile.solve` calls.

This module holds the pieces both execution modes share — the
:class:`WorkerTimeout` / :class:`WorkerCancelled` /
:class:`WorkerCrashed` exception vocabulary, the SIGTERM→SIGKILL
:func:`_reap` escalation, :func:`run_backend_payload` and the
``thread``-mode :func:`execute_inline` path (soft deadlines: a Python
thread cannot be preempted, so an overdue job is detected after the
fact and its result discarded). ``process`` mode — persistent warm
workers with shared-memory model dispatch and hard deadline reaping —
lives in :mod:`repro.service.pool`; PR-5's fork-per-job
``execute_in_process`` was retired when the warm pool replaced it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..compile.dispatch import SolverConfig, run_registry_backend
from ..telemetry import metrics as _metrics
from ..telemetry.collector import Collector
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.progress import ProgressTrace
from ..telemetry.trace import Tracer

#: Seconds granted for a terminated worker to exit before escalating
#: from SIGTERM to SIGKILL.
REAP_GRACE_SECONDS = 1.0


class WorkerTimeout(Exception):
    """The job blew its deadline; the worker (if any) was reaped."""


class WorkerCancelled(Exception):
    """The job was cancelled while running; the worker was reaped."""


class WorkerCrashed(Exception):
    """The worker process died or raised; carries the child traceback."""


@dataclass
class WorkerOutcome:
    """Everything a worker ships back from one backend run."""

    samples: Any
    convergence: Optional[List[Dict[str, Any]]]
    duration: float
    pid: int
    telemetry_snapshot: Optional[Dict[str, Any]] = None
    trace_events: Optional[List[Dict[str, Any]]] = None
    trace_epoch_ns: Optional[int] = None
    metrics_snapshot: Optional[Dict[str, Any]] = None


def run_backend_payload(model: Any, solver: str, config: SolverConfig,
                        capture_telemetry: bool = False,
                        capture_trace: bool = False,
                        capture_metrics: bool = False) -> WorkerOutcome:
    """Run one registry backend and package the outcome.

    When capture flags are set a *fresh* collector/tracer/metrics
    registry is installed globally first — in a worker process that
    global state is private to the child, so this cleanly scopes
    capture to the one job.
    """
    collector: Optional[Collector] = None
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    if capture_telemetry:
        collector = telemetry.enable(Collector())
    if capture_trace:
        tracer = telemetry.enable_tracing(Tracer())
    if capture_metrics:
        registry = _metrics.enable_metrics(MetricsRegistry())
    progress = (ProgressTrace(label=solver)
                if config.convergence_active() else None)
    start = time.perf_counter()
    with telemetry.span(f"service.worker.{solver}"):
        samples = run_registry_backend(model, solver, config, progress)
    duration = time.perf_counter() - start
    if progress is not None:
        progress.note_truncation()
    return WorkerOutcome(
        samples=samples,
        convergence=progress.rows() if progress is not None else None,
        duration=duration,
        pid=os.getpid(),
        telemetry_snapshot=(collector.snapshot()
                            if collector is not None else None),
        trace_events=tracer.events() if tracer is not None else None,
        trace_epoch_ns=tracer.epoch_ns if tracer is not None else None,
        metrics_snapshot=(registry.snapshot()
                          if registry is not None else None),
    )


def execute_inline(job, model: Any, solver: str, config: SolverConfig,
                   deadline: Optional[float] = None) -> WorkerOutcome:
    """Run the backend on the calling (dispatcher) thread.

    Telemetry/tracing flow into the process-global state directly, so
    the outcome carries no snapshot to merge. The deadline is soft:
    checked after the run, raising :class:`WorkerTimeout` and
    discarding the (already computed) result for uniform semantics.
    """
    progress = (ProgressTrace(label=solver)
                if config.convergence_active() else None)
    start = time.perf_counter()
    with telemetry.span(f"service.worker.{solver}"):
        samples = run_registry_backend(model, solver, config, progress)
    duration = time.perf_counter() - start
    if progress is not None:
        progress.note_truncation()
    if deadline is not None and duration > deadline:
        raise WorkerTimeout(
            f"job {job.job_id} ({solver}) exceeded its {deadline:g}s "
            f"deadline (ran {duration:.3f}s); thread workers enforce "
            "deadlines post-hoc — use mode='process' for hard reaping"
        )
    return WorkerOutcome(
        samples=samples,
        convergence=progress.rows() if progress is not None else None,
        duration=duration,
        pid=os.getpid(),
    )


def _reap(process) -> None:
    """Terminate and join a worker process, escalating to SIGKILL.

    Idempotent: a second call on an already-closed Process object is a
    no-op (``is_alive`` raises ValueError once closed).
    """
    try:
        alive = process.is_alive()
    except ValueError:
        return
    if alive:
        process.terminate()
        process.join(REAP_GRACE_SECONDS)
        if process.is_alive():
            process.kill()
            process.join(REAP_GRACE_SECONDS)
    else:
        process.join(REAP_GRACE_SECONDS)
    # Release the Process object's pipe/sentinel file descriptors.
    if hasattr(process, "close"):
        try:
            process.close()
        except ValueError:
            pass
