"""Persistent warm worker pool with shared-memory model dispatch.

PR-5's process mode forked **one worker per job**: every dispatch paid
a process spawn, an import-warm-up and a full pickle of the model in
and the result out — which is why the committed ``service_throughput``
benchmark ran *slower* than sequential (0.91x with 2 workers). This
module replaces that with long-lived workers:

* :class:`WarmWorkerPool` — spawns ``size`` worker processes once per
  :class:`~repro.service.SolveService`. Each worker holds the solver
  registry imported and warm, and loops on a duplex pipe pulling task
  batches until drained.
* :class:`SharedModelStore` — parent-side registry of
  ``multiprocessing.shared_memory`` segments, one per distinct model
  (keyed by :meth:`CompiledProblem.content_key`). The packed term
  arrays (:mod:`repro.compile.buffers`) are written into the segment
  once; workers attach, rebuild the model, cache it by content key and
  close the segment — so N jobs on the same model pay for **zero**
  model transfers after the first, and even the first is a flat numpy
  copy rather than a pickle.
* **Cross-job batching** — one task message carries *several* jobs
  (same model, same registry solver, independent configs/seeds); the
  worker answers them in one round trip. Each job still runs its own
  seeded backend call, so results stay bit-for-bit identical to
  sequential ``solve()``.
* **Reap + respawn** — the SIGTERM→SIGKILL deadline/cancel semantics
  of PR-5 survive: a worker that blows a deadline, is cancelled
  mid-flight or crashes is killed and **replaced**, so the pool never
  shrinks and a wedged solver can never hang the service
  (``service_worker_respawns_total`` counts replacements).
* **Drain-time telemetry merge** — warm workers accumulate their
  collector/tracer/metrics state across *all* their jobs and ship one
  cumulative snapshot when the pool drains at shutdown. Merging
  cumulative snapshots per job (the PR-5 scheme, correct for
  one-job-per-process workers) would double-count a warm worker's
  totals; drain-time merging folds each worker exactly once.

Compact results: a worker returns best-state bits as a ``uint8``
matrix plus ``float64`` energies and ``int64`` occurrence counts —
the parent rebuilds the :class:`SampleSet` exactly (assignments,
energies and read counts round-trip unchanged), then decodes through
the original problem hooks as ever.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..annealing.results import Sample, SampleSet
from ..compile.buffers import (
    pack_model,
    packed_nbytes,
    unpack_model,
    write_packed,
)
from ..compile.dispatch import SolverConfig, run_registry_backend
from ..telemetry import context as _tracectx
from ..telemetry import metrics as _metrics
from ..telemetry import profiler as _profiler
from ..telemetry.collector import Collector
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.progress import ProgressTrace
from ..telemetry.trace import Tracer
from .workers import (
    WorkerCancelled,
    WorkerCrashed,
    WorkerTimeout,
    _reap,
)

try:  # pragma: no cover - exercised implicitly on every import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shm support
    _shared_memory = None

__all__ = [
    "ModelRef",
    "SharedModelStore",
    "WarmWorkerPool",
]

#: Seconds a drained worker gets to ship its final snapshot and exit
#: before the pool gives up and kills it.
DRAIN_TIMEOUT_SECONDS = 10.0

#: Worker-side LRU capacity of reconstructed models.
WORKER_MODEL_CACHE = 64

#: Most recent per-job attribution entries a worker ships at drain.
WORKER_ATTRIBUTION_LOG = 1024


def _respawns_counter(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "service_worker_respawns_total",
        "warm workers killed (deadline, cancel, crash) and replaced",
    )


def _pool_dispatch_counter(registry: "_metrics.MetricsRegistry"):
    return registry.counter(
        "service_pool_dispatch_total",
        "warm-pool task dispatches by model residency (warm = model "
        "already cached in the worker, cold = shipped this dispatch)",
        ("kind",),
    )


# ----------------------------------------------------------------------
# Shared-memory model store (parent side)
# ----------------------------------------------------------------------
@dataclass
class ModelRef:
    """Everything a worker needs to materialize one model.

    ``transport`` is ``"shm"`` (attach ``segment`` and unpack ``meta``)
    or ``"inline"`` (the pickled ``model`` rides along in the pipe —
    the fallback when shared memory is unavailable).
    """

    content_key: str
    transport: str
    meta: Optional[Dict[str, Any]] = None
    segment: Optional[str] = None
    nbytes: int = 0
    model: Any = None

    def wire_form(self) -> Dict[str, Any]:
        """The picklable payload actually sent over the worker pipe."""
        return {
            "content_key": self.content_key,
            "transport": self.transport,
            "meta": self.meta,
            "segment": self.segment,
            "model": self.model,
        }


@dataclass
class _Segment:
    shm: Any
    ref: ModelRef
    inflight: int = 0


class SharedModelStore:
    """Content-addressed shared-memory segments for compiled models.

    ``publish`` creates (or reuses) the segment for a problem's model
    and pins it while a dispatch referencing it is in flight;
    ``release`` unpins. Eviction past ``capacity`` only touches
    unpinned segments, and ``close`` unlinks everything — the solve
    service calls it when the last dispatcher exits so no ``/dev/shm``
    entry outlives the service.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._segments: "OrderedDict[str, _Segment]" = OrderedDict()
        self._closed = False
        self.bytes_shared = 0
        self.segments_created = 0

    def publish(self, problem) -> ModelRef:
        """Segment reference for a problem's model, created on demand."""
        key = problem.content_key()
        with self._lock:
            if self._closed:
                raise RuntimeError("model store is closed")
            entry = self._segments.get(key)
            if entry is not None:
                entry.inflight += 1
                self._segments.move_to_end(key)
                return entry.ref
            ref = self._create(key, problem.model)
            entry = _Segment(shm=getattr(ref, "_shm", None), ref=ref)
            if ref.transport == "shm":
                entry.shm = ref._shm  # type: ignore[attr-defined]
                del ref._shm  # type: ignore[attr-defined]
            entry.inflight = 1
            self._segments[key] = entry
            self._evict_unpinned()
            return ref

    def _create(self, key: str, model: Any) -> ModelRef:
        meta, arrays = pack_model(model)
        nbytes = packed_nbytes(meta)
        if _shared_memory is not None:
            try:
                # SharedMemory rejects size 0 (a term-free model).
                shm = _shared_memory.SharedMemory(
                    create=True, size=max(nbytes, 1))
            except (OSError, ValueError):
                shm = None
        else:  # pragma: no cover - platform without shm support
            shm = None
        if shm is None:
            # Inline fallback: the model pickles through the pipe once
            # per worker (the worker-side cache still amortizes it).
            return ModelRef(content_key=key, transport="inline",
                            model=model)
        write_packed(meta, arrays, shm.buf)
        self.bytes_shared += nbytes
        self.segments_created += 1
        registry = _metrics.get_registry()
        if registry is not None:
            registry.counter(
                "service_shm_bytes_total",
                "model bytes written into shared-memory segments",
            ).inc(nbytes)
            registry.gauge(
                "service_shm_segments",
                "live shared-memory model segments",
            ).set(len(self._segments) + 1)
        ref = ModelRef(content_key=key, transport="shm", meta=meta,
                       segment=shm.name, nbytes=nbytes)
        ref._shm = shm  # type: ignore[attr-defined]
        return ref

    def release(self, ref: ModelRef) -> None:
        """Unpin a segment once its dispatch round trip finished."""
        with self._lock:
            entry = self._segments.get(ref.content_key)
            if entry is not None and entry.inflight > 0:
                entry.inflight -= 1

    def _evict_unpinned(self) -> None:
        # Caller holds the lock.
        while len(self._segments) > self.capacity:
            victim = next(
                (key for key, entry in self._segments.items()
                 if entry.inflight == 0), None)
            if victim is None:
                return
            self._unlink(self._segments.pop(victim))

    @staticmethod
    def _unlink(entry: _Segment) -> None:
        if entry.shm is None:
            return
        try:
            entry.shm.close()
            entry.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def segment_names(self) -> List[str]:
        """Names of live segments (test hook for leak checks)."""
        with self._lock:
            return [entry.ref.segment
                    for entry in self._segments.values()
                    if entry.ref.segment is not None]

    def close(self) -> None:
        """Unlink every segment; the store rejects further publishes."""
        with self._lock:
            self._closed = True
            entries = list(self._segments.values())
            self._segments.clear()
        for entry in entries:
            self._unlink(entry)
        registry = _metrics.get_registry()
        if registry is not None:
            registry.gauge(
                "service_shm_segments",
                "live shared-memory model segments").set(0)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "segments": len(self._segments),
                "capacity": self.capacity,
                "bytes_shared": self.bytes_shared,
                "segments_created": self.segments_created,
            }


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
def _attach_segment(name: str):
    """Attach an existing segment without double-tracking it.

    The creating (parent) process owns the unlink. Python 3.13 grew
    ``track=False`` for exactly this. On older versions the attach
    re-registers the name, but forked workers share the parent's
    resource tracker and registration is set-idempotent there, so the
    parent's single unregister-on-unlink still balances it; an explicit
    worker-side unregister would instead strip the parent's entry and
    make that unlink complain.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13: no track parameter
        return _shared_memory.SharedMemory(name=name)


def _materialize_model(wire_ref: Dict[str, Any],
                       cache: "OrderedDict[str, Any]"
                       ) -> Tuple[Any, bool]:
    """Model for a wire reference; returns ``(model, was_cached)``."""
    key = wire_ref["content_key"]
    model = cache.get(key)
    if model is not None:
        cache.move_to_end(key)
        return model, True
    if wire_ref["transport"] == "shm":
        shm = _attach_segment(wire_ref["segment"])
        try:
            model = unpack_model(wire_ref["meta"], shm.buf)
        finally:
            shm.close()
    else:
        model = wire_ref["model"]
    cache[key] = model
    while len(cache) > WORKER_MODEL_CACHE:
        cache.popitem(last=False)
    return model, False


def _compact_samples(samples: SampleSet) -> Dict[str, Any]:
    """Lower a SampleSet to flat arrays for the result pipe."""
    rows = samples.samples
    bits = np.array([row.assignment for row in rows], dtype=np.uint8)
    return {
        "bits": bits,
        "energies": np.array([row.energy for row in rows],
                             dtype=np.float64),
        "occurrences": np.array([row.num_occurrences for row in rows],
                                dtype=np.int64),
    }


def expand_samples(compact: Dict[str, Any]) -> SampleSet:
    """Rebuild the worker's SampleSet exactly from its compact form."""
    return SampleSet([
        Sample(tuple(int(bit) for bit in bits), float(energy),
               int(occurrences))
        for bits, energy, occurrences in zip(
            compact["bits"], compact["energies"],
            compact["occurrences"])
    ])


def _run_member(model: Any, solver: str, config: SolverConfig,
                job_id: Optional[int] = None,
                trace_id: Optional[str] = None) -> Dict[str, Any]:
    """One job inside the warm worker: solve, compact, never raise.

    When the parent shipped a trace id for the member (context layer
    enabled), the whole solve runs under an activated worker-side
    context, so every span/instant/convergence row the worker records
    carries the parent's ``trace_id``/``job_id`` through drain-merge.
    """
    try:
        progress = (ProgressTrace(label=solver)
                    if config.convergence_active() else None)
        capture = _profiler.maybe_capture(None)
        start = time.perf_counter()
        with _tracectx.activate(trace_id, job_id=job_id,
                                stage="worker"):
            with telemetry.span(f"service.worker.{solver}"):
                if capture is not None:
                    with capture:
                        samples = run_registry_backend(
                            model, solver, config, progress)
                else:
                    samples = run_registry_backend(model, solver,
                                                   config, progress)
        duration = time.perf_counter() - start
        if progress is not None:
            progress.note_truncation()
        result = {
            "ok": True,
            "samples": _compact_samples(samples),
            "convergence": (progress.rows() if progress is not None
                            else None),
            "duration": duration,
        }
        if capture is not None:
            result["profile"] = capture.summary()
        return result
    except BaseException:
        return {"ok": False, "traceback": traceback.format_exc()}


def _capture_payload(collector, tracer, registry,
                     jobs: Optional[List[Dict[str, Any]]] = None
                     ) -> Dict[str, Any]:
    return {
        "pid": os.getpid(),
        "telemetry_snapshot": (collector.snapshot()
                               if collector is not None else None),
        "trace_events": tracer.events() if tracer is not None else None,
        "trace_epoch_ns": (tracer.epoch_ns
                           if tracer is not None else None),
        "metrics_snapshot": (registry.snapshot()
                             if registry is not None else None),
        # Per-job attribution: which (job_id, trace_id, solver) each
        # merged snapshot covers — without it, drain-merged worker
        # telemetry cannot be tied back to the jobs that produced it.
        "jobs": list(jobs) if jobs else [],
    }


def _warm_worker_main(connection, index: int,
                      capture: Dict[str, bool]) -> None:
    """Worker-process entry: loop on tasks until drained.

    With the default ``fork`` start method the child inherits the
    parent's live collector/tracer/registry objects; the first thing a
    warm worker does is replace them with private instances so its
    accounting never aliases the parent's (the parent folds the
    worker's cumulative snapshot in exactly once, at drain).
    """
    telemetry.disable()
    telemetry.disable_tracing()
    _metrics.disable_metrics()
    _tracectx.disable_context()
    _profiler.disable_profiling()
    collector: Optional[Collector] = None
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None

    def ensure_capture(flags: Dict[str, bool]) -> None:
        nonlocal collector, tracer, registry
        if flags.get("telemetry") and collector is None:
            collector = telemetry.enable(Collector())
        if flags.get("trace") and tracer is None:
            tracer = telemetry.enable_tracing(Tracer())
            tracer.instant("service.pool.worker_boot",
                           args={"index": index})
        if flags.get("metrics") and registry is None:
            registry = _metrics.enable_metrics(MetricsRegistry())
        if flags.get("context") and not _tracectx.is_context_enabled():
            _tracectx.enable_context()
        if flags.get("profile") and not _profiler.is_profiling_enabled():
            _profiler.enable_profiling()

    ensure_capture(capture)
    models: "OrderedDict[str, Any]" = OrderedDict()
    jobs_log: deque = deque(maxlen=WORKER_ATTRIBUTION_LOG)
    try:
        while True:
            try:
                message = connection.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "drain":
                connection.send(
                    ("drained",
                     _capture_payload(collector, tracer, registry,
                                      jobs=list(jobs_log))))
                return
            _, task_id, flags, wire_ref, members = message
            ensure_capture(flags)
            try:
                model, was_cached = _materialize_model(wire_ref, models)
            except BaseException:
                failure = {"ok": False,
                           "traceback": traceback.format_exc()}
                connection.send(("ok", task_id, os.getpid(), False,
                                 [failure for _ in members]))
                continue
            results = []
            for member in members:
                job_id, solver, config = member[0], member[1], member[2]
                trace_id = member[3] if len(member) > 3 else None
                result = _run_member(model, solver, config,
                                     job_id=job_id, trace_id=trace_id)
                jobs_log.append({
                    "job_id": job_id,
                    "trace_id": trace_id,
                    "solver": solver,
                    "ok": result["ok"],
                    "duration": result.get("duration"),
                })
                results.append(result)
            connection.send(("ok", task_id, os.getpid(), was_cached,
                             results))
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Parent side: the pool
# ----------------------------------------------------------------------
@dataclass
class _WarmWorker:
    index: int
    process: Any
    connection: Any
    task_counter: int = 0
    jobs_run: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class BatchOutcome:
    """Parent-side view of one warm-worker round trip."""

    pid: int
    model_was_cached: bool
    results: List[Dict[str, Any]]


class WarmWorkerPool:
    """Fixed-size pool of persistent worker processes.

    One dispatcher thread drives one worker slot (the service spawns
    exactly ``size`` dispatchers), so slot access needs no leasing
    protocol; ``execute`` is safe to call concurrently on *different*
    indices. Any abnormal end of a round trip (deadline reap, cancel
    reap, crash) kills the slot's process and respawns a fresh one —
    the pool's size is an invariant, not a high-water mark.
    """

    def __init__(self, size: int, context):
        if size < 1:
            raise ValueError("pool size must be positive")
        self._context = context
        self._lock = threading.Lock()
        self.respawns = 0
        self.dispatches_warm = 0
        self.dispatches_cold = 0
        registry = _metrics.get_registry()
        if registry is not None:
            # Create the counter eagerly so a healthy run exports an
            # explicit zero rather than a missing series.
            _respawns_counter(registry).inc(0)
        # Start the parent's shm resource tracker *before* forking so
        # every worker inherits its fd: attach-side registrations then
        # land in the shared tracker (set-idempotent with the parent's
        # own entry) instead of a worker-private tracker that would try
        # to re-unlink segments on worker exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform-specific
            pass
        self._workers: List[_WarmWorker] = [
            self._spawn(index) for index in range(size)
        ]

    # -- lifecycle -------------------------------------------------------
    def _capture_flags(self) -> Dict[str, bool]:
        return {
            "telemetry": telemetry.get_collector() is not None,
            "trace": telemetry.get_tracer() is not None,
            "metrics": _metrics.get_registry() is not None,
            "context": _tracectx.get_context_state() is not None,
            "profile": _profiler.get_profiler_config() is not None,
        }

    def _spawn(self, index: int) -> _WarmWorker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_warm_worker_main,
            args=(child_conn, index, self._capture_flags()),
            daemon=True,
            name=f"repro-warm-worker-{index}",
        )
        process.start()
        child_conn.close()
        return _WarmWorker(index=index, process=process,
                           connection=parent_conn)

    def _respawn(self, worker: _WarmWorker) -> None:
        _reap(worker.process)
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover
            pass
        fresh = self._spawn(worker.index)
        with self._lock:
            self._workers[worker.index] = fresh
            self.respawns += 1
        telemetry.count("service.pool.respawns")
        registry = _metrics.get_registry()
        if registry is not None:
            _respawns_counter(registry).inc()

    def worker(self, index: int) -> _WarmWorker:
        with self._lock:
            return self._workers[index]

    def pids(self) -> List[Optional[int]]:
        with self._lock:
            return [worker.process.pid for worker in self._workers]

    # -- execution -------------------------------------------------------
    def execute(self, index: int, leader,
                members: List[Tuple[Any, ...]],
                ref: ModelRef,
                deadline: Optional[float] = None,
                publish_process: bool = True) -> BatchOutcome:
        """Run one task batch on slot ``index``; reap+respawn on harm.

        ``leader`` is the service's :class:`~repro.service.queue.Job`
        driving the batch — its ``process`` slot is published (for
        singleton batches) so a concurrent ``cancel()`` can reap the
        worker, and its terminal status disambiguates a cancel-kill
        from a genuine crash. Raises :class:`WorkerTimeout`,
        :class:`WorkerCancelled` or :class:`WorkerCrashed` exactly like
        the PR-5 per-job executor did.

        Each member is ``(job_id, solver, config)`` with an optional
        fourth ``trace_id`` element; the id rides the pipe so the
        worker can attribute its telemetry to the parent's trace.
        """
        worker = self.worker(index)
        with leader.lock:
            if publish_process and leader.status.is_terminal():
                # cancel() landed between dequeue and dispatch; the
                # worker never saw the task, so it stays warm. (For
                # folded batches the task is sent regardless — the
                # other members still need their results, and the
                # cancelled leader's is simply dropped on resolve.)
                raise WorkerCancelled(
                    f"job {leader.job_id} cancelled")
            if publish_process:
                leader.process = worker.process
        worker.task_counter += 1
        task_id = worker.task_counter
        wire_members = [tuple(member) for member in members]
        try:
            worker.connection.send(
                ("run", task_id, self._capture_flags(),
                 ref.wire_form(), wire_members))
            reply = self._await_reply(worker, leader, task_id, deadline)
        except (WorkerTimeout, WorkerCancelled, WorkerCrashed):
            self._respawn(worker)
            raise
        except (BrokenPipeError, OSError) as error:
            self._respawn(worker)
            raise WorkerCrashed(
                f"warm worker pid={worker.process.pid} pipe failed: "
                f"{error}"
            ) from error
        finally:
            if publish_process:
                with leader.lock:
                    leader.process = None
        _status, _task, pid, was_cached, results = reply
        worker.jobs_run += len(members)
        with self._lock:
            if was_cached:
                self.dispatches_warm += 1
            else:
                self.dispatches_cold += 1
        registry = _metrics.get_registry()
        if registry is not None:
            _pool_dispatch_counter(registry).labels(
                kind="warm" if was_cached else "cold").inc()
        return BatchOutcome(pid=pid, model_was_cached=was_cached,
                            results=results)

    def _await_reply(self, worker: _WarmWorker, leader, task_id: int,
                     deadline: Optional[float]):
        connection = worker.connection
        process = worker.process
        expires = (None if deadline is None
                   else time.perf_counter() + deadline)
        while True:
            remaining = (None if expires is None
                         else expires - time.perf_counter())
            if remaining is not None and remaining <= 0:
                raise WorkerTimeout(
                    f"job {leader.job_id} ({leader.solver}) exceeded "
                    f"its {deadline:g}s deadline; warm worker "
                    f"pid={process.pid} reaped"
                )
            if connection.poll(min(remaining, 0.05)
                               if remaining is not None else 0.05):
                break
            if not process.is_alive() and not connection.poll():
                with leader.lock:
                    cancelled = leader.status.is_terminal()
                if cancelled:
                    raise WorkerCancelled(
                        f"job {leader.job_id} cancelled; warm worker "
                        "reaped"
                    )
                raise WorkerCrashed(
                    f"warm worker pid={process.pid} died with exit "
                    f"code {process.exitcode} while running job "
                    f"{leader.job_id}"
                )
        try:
            reply = connection.recv()
        except (EOFError, OSError) as error:
            with leader.lock:
                cancelled = leader.status.is_terminal()
            if cancelled:
                raise WorkerCancelled(
                    f"job {leader.job_id} cancelled; warm worker "
                    "reaped"
                ) from error
            raise WorkerCrashed(
                f"warm worker pid={process.pid} closed the result "
                f"pipe mid-task: {error}"
            ) from error
        if reply[0] != "ok" or reply[1] != task_id:
            raise WorkerCrashed(
                f"warm worker pid={process.pid} answered out of "
                f"protocol ({reply[0]!r}, task {reply[1]!r} != "
                f"{task_id})"
            )
        return reply

    # -- drain -----------------------------------------------------------
    def drain(self, index: int) -> Optional[Dict[str, Any]]:
        """Gracefully stop slot ``index``; returns its final snapshot.

        Returns ``None`` when the worker died before shipping its
        payload (its telemetry dies with it — a reaped worker cannot
        flush).
        """
        worker = self.worker(index)
        payload = None
        try:
            worker.connection.send(("drain",))
            if worker.connection.poll(DRAIN_TIMEOUT_SECONDS):
                reply = worker.connection.recv()
                if reply[0] == "drained":
                    payload = reply[1]
        except (BrokenPipeError, EOFError, OSError):
            payload = None
        worker.process.join(DRAIN_TIMEOUT_SECONDS)
        _reap(worker.process)
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover
            pass
        return payload

    @staticmethod
    def _pid(process) -> Optional[int]:
        """``process.pid``, or ``None`` once the handle is closed.

        ``stats()`` is documented as readable after shutdown (the drain
        log only fills in then), so the snapshot must not trip over
        closed :class:`multiprocessing.Process` objects.
        """
        try:
            return process.pid
        except ValueError:
            return None

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "size": len(self._workers),
                "pids": [self._pid(worker.process)
                         for worker in self._workers],
                "respawns": self.respawns,
                "dispatches_warm": self.dispatches_warm,
                "dispatches_cold": self.dispatches_cold,
                "jobs_run": sum(worker.jobs_run
                                for worker in self._workers),
            }
