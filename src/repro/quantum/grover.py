"""Grover search and amplitude amplification.

The quadratic-speedup primitive behind the "Grover-like" database
search and unstructured-optimization applications the tutorial
discusses. Implemented with explicit oracle/diffusion unitaries
applied through the statevector simulator, so marked sets of any shape
are supported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

import numpy as np



def phase_oracle_matrix(num_qubits: int,
                        marked: Iterable[int]) -> np.ndarray:
    """Diagonal unitary flipping the phase of the marked basis states."""
    dim = 2 ** num_qubits
    diagonal = np.ones(dim, dtype=complex)
    for index in marked:
        if not 0 <= index < dim:
            raise ValueError(f"marked state {index} out of range")
        diagonal[index] = -1.0
    return np.diag(diagonal)


def diffusion_matrix(num_qubits: int) -> np.ndarray:
    """Inversion about the uniform superposition: ``2|s><s| - I``."""
    dim = 2 ** num_qubits
    uniform = np.full((dim, dim), 2.0 / dim, dtype=complex)
    return uniform - np.eye(dim)


def optimal_iterations(num_qubits: int, num_marked: int) -> int:
    """The rotation count maximizing success probability:
    ``round(pi / (4 asin(sqrt(M / N))) - 1/2)``.

    When at least half the states are marked the uniform superposition
    already succeeds with probability >= 1/2 and a Grover rotation can
    *overshoot to zero* (e.g. M/N = 3/4 rotates exactly past the
    target), so 0 iterations is returned — measure directly.
    """
    if num_marked < 1:
        raise ValueError("need at least one marked state")
    dim = 2 ** num_qubits
    if num_marked >= dim:
        raise ValueError("cannot mark every state")
    if 2 * num_marked >= dim:
        return 0
    angle = math.asin(math.sqrt(num_marked / dim))
    return max(1, round(math.pi / (4.0 * angle) - 0.5))


@dataclass
class GroverResult:
    """Outcome of a Grover run."""

    success_probability: float
    iterations: int
    top_state: int
    probabilities: np.ndarray


def grover_search(num_qubits: int, marked: Sequence[int],
                  iterations: Optional[int] = None) -> GroverResult:
    """Run Grover search for the given marked computational states.

    Returns the exact success probability (sum over marked states)
    after the chosen (default: optimal) iteration count.
    """
    marked = sorted(set(int(m) for m in marked))
    if iterations is None:
        iterations = optimal_iterations(num_qubits, len(marked))
    if iterations < 0:
        raise ValueError("iterations must be non-negative")

    state = np.full(2 ** num_qubits,
                    1.0 / math.sqrt(2 ** num_qubits), dtype=complex)
    oracle = phase_oracle_matrix(num_qubits, marked)
    diffusion = diffusion_matrix(num_qubits)
    for _ in range(iterations):
        state = oracle @ state
        state = diffusion @ state
    probabilities = np.abs(state) ** 2
    return GroverResult(
        success_probability=float(probabilities[marked].sum()),
        iterations=iterations,
        top_state=int(np.argmax(probabilities)),
        probabilities=probabilities,
    )


def grover_search_predicate(num_qubits: int,
                            predicate: Callable[[int], bool],
                            iterations: Optional[int] = None
                            ) -> GroverResult:
    """Grover search with the marked set defined by a Python predicate
    over basis-state indices (the 'unstructured database' view)."""
    marked = [i for i in range(2 ** num_qubits) if predicate(i)]
    if not marked:
        raise ValueError("predicate marks no state")
    return grover_search(num_qubits, marked, iterations=iterations)


def grover_minimum_search(values: Sequence[float],
                          num_rounds: Optional[int] = None,
                          seed: Optional[int] = None) -> int:
    """Dürr–Høyer minimum finding over a value table.

    Repeatedly Grover-searches for entries below the current
    threshold, sampling from the post-measurement distribution; with
    ``O(sqrt(N))`` oracle calls in expectation it returns the argmin.
    This is the primitive behind 'Grover-accelerated' optimizer search
    over e.g. join orders.
    """
    values = np.asarray(values, dtype=float)
    n = values.size
    num_qubits = max(1, math.ceil(math.log2(n)))
    dim = 2 ** num_qubits
    padded = np.full(dim, np.inf)
    padded[:n] = values
    rng = np.random.default_rng(seed)
    if num_rounds is None:
        # Durr-Hoyer needs ~O(sqrt(N)) oracle rounds in expectation;
        # the constant here trades a few extra rounds for a high
        # end-to-end success probability.
        num_rounds = 2 * math.ceil(math.sqrt(dim)) + 3
    best = int(rng.integers(n))
    for _ in range(num_rounds):
        marked = np.flatnonzero(padded < padded[best])
        if marked.size == 0:
            break
        result = grover_search(num_qubits, marked.tolist())
        sample = int(rng.choice(dim, p=result.probabilities
                                / result.probabilities.sum()))
        if padded[sample] < padded[best]:
            best = sample
    return best


def counts_from_grover(result: GroverResult, shots: int,
                       seed: Optional[int] = None) -> Dict[str, int]:
    """Sample measurement outcomes from a Grover result."""
    rng = np.random.default_rng(seed)
    num_qubits = int(round(math.log2(result.probabilities.size)))
    outcomes = rng.choice(result.probabilities.size, size=shots,
                          p=result.probabilities
                          / result.probabilities.sum())
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        key = format(outcome, f"0{num_qubits}b")
        counts[key] = counts.get(key, 0) + 1
    return counts
