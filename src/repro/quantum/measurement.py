"""Shot-based estimation helpers.

The exact simulators give noiseless expectation values; real hardware
estimates them from a finite number of measurement shots. This module
provides the shot-noise layer used by the optimizers experiment (E7)
and anywhere a finite-sampling budget matters.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from .circuit import Circuit
from .operators import PauliString, PauliSum
from .statevector import StatevectorSimulator


def counts_to_probabilities(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalize a counts dictionary into outcome frequencies."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("counts must be non-empty")
    return {key: value / total for key, value in counts.items()}


def expectation_with_shots(circuit: Circuit, observable,
                           shots: int,
                           rng: Optional[np.random.Generator] = None) -> float:
    """Estimate ``<O>`` from a finite sample budget.

    Each non-diagonal Pauli term is rotated into the Z basis with the
    standard basis-change gates (H for X, S^dag H for Y), measured with
    its share of the shot budget, and the diagonal expectation is read
    off the sampled bitstrings.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    if isinstance(observable, PauliString):
        observable = PauliSum([observable])
    terms = list(observable)
    if not terms:
        return 0.0
    rng = rng or np.random.default_rng()
    shots_per_term = max(1, shots // len(terms))
    sim = StatevectorSimulator(seed=int(rng.integers(2 ** 31)))
    total = 0.0
    for term in terms:
        if term.is_identity:
            total += term.coefficient.real
            continue
        rotated = _rotate_to_z_basis(circuit, term)
        counts = sim.sample_counts(rotated, shots_per_term)
        diagonal = PauliSum([PauliString(
            "".join("Z" if c != "I" else "I" for c in term.label),
            term.coefficient,
        )])
        total += diagonal.expectation_from_counts(counts)
    return total


def _rotate_to_z_basis(circuit: Circuit, term: PauliString) -> Circuit:
    """Append the basis change that diagonalizes ``term``."""
    rotated = circuit.copy()
    for qubit, char in enumerate(term.label):
        if char == "X":
            rotated.h(qubit)
        elif char == "Y":
            rotated.sdg(qubit)
            rotated.h(qubit)
    return rotated


def sample_bit_expectation(counts: Mapping[str, int], qubit: int) -> float:
    """Expectation of ``Z`` on one qubit from counts: ``P(0) - P(1)``."""
    probs = counts_to_probabilities(counts)
    value = 0.0
    for bitstring, weight in probs.items():
        value += weight * (1.0 if bitstring[qubit] == "0" else -1.0)
    return value
