"""Pauli-string observables and Hamiltonians.

:class:`PauliString` is a tensor product of single-qubit Paulis with a
real or complex coefficient, written as a label such as ``"ZZI"`` (qubit
0 first, matching the simulator's big-endian convention).
:class:`PauliSum` is a linear combination of Pauli strings — the
observable type consumed by the simulators, the QML models and QAOA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from .gates import I2, PAULI_X, PAULI_Y, PAULI_Z

_PAULI_MATRICES = {"I": I2, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}
_VALID = frozenset("IXYZ")


@dataclass(frozen=True)
class PauliString:
    """A weighted Pauli tensor product, e.g. ``0.5 * XZI``."""

    label: str
    coefficient: complex = 1.0

    def __post_init__(self):
        if not self.label:
            raise ValueError("label must be non-empty")
        bad = set(self.label) - _VALID
        if bad:
            raise ValueError(f"invalid Pauli characters: {sorted(bad)}")

    @property
    def num_qubits(self) -> int:
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        return set(self.label) == {"I"}

    def support(self) -> Tuple[int, ...]:
        """Qubits on which the string acts non-trivially."""
        return tuple(i for i, c in enumerate(self.label) if c != "I")

    def matrix(self) -> np.ndarray:
        """Dense matrix of the full string (exponential in qubits)."""
        out = np.array([[self.coefficient]], dtype=complex)
        for char in self.label:
            out = np.kron(out, _PAULI_MATRICES[char])
        return out

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Apply the string to a statevector in ``O(2**n)`` per factor."""
        from .statevector import apply_matrix

        n = self.num_qubits
        out = np.asarray(state, dtype=complex)
        for qubit, char in enumerate(self.label):
            if char != "I":
                out = apply_matrix(out, _PAULI_MATRICES[char], (qubit,), n)
        return self.coefficient * out

    def expectation(self, state: np.ndarray) -> float:
        """Expectation ``<psi|P|psi>`` (real part; imaginary is ~0)."""
        value = np.vdot(state, self.apply(state))
        return float(value.real)

    def __mul__(self, scalar: complex) -> "PauliString":
        return PauliString(self.label, self.coefficient * scalar)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"{self.coefficient:g} * {self.label}"


def single_z(qubit: int, num_qubits: int, coefficient: complex = 1.0
             ) -> PauliString:
    """Convenience: the ``Z`` observable on one qubit."""
    label = "".join("Z" if i == qubit else "I" for i in range(num_qubits))
    return PauliString(label, coefficient)


def zz(qubit_a: int, qubit_b: int, num_qubits: int,
       coefficient: complex = 1.0) -> PauliString:
    """Convenience: ``Z_a Z_b`` coupling term."""
    if qubit_a == qubit_b:
        raise ValueError("qubits must differ")
    label = "".join(
        "Z" if i in (qubit_a, qubit_b) else "I" for i in range(num_qubits)
    )
    return PauliString(label, coefficient)


class PauliSum:
    """A linear combination of Pauli strings on a common qubit count."""

    def __init__(self, terms: Iterable[PauliString] = ()):
        self.terms: List[PauliString] = list(terms)
        if self.terms:
            n = self.terms[0].num_qubits
            for t in self.terms:
                if t.num_qubits != n:
                    raise ValueError(
                        "all terms must act on the same number of qubits"
                    )

    @property
    def num_qubits(self) -> int:
        if not self.terms:
            raise ValueError("empty PauliSum has no qubit count")
        return self.terms[0].num_qubits

    def add(self, term: PauliString) -> "PauliSum":
        """Append a term (in place) and return self."""
        if self.terms and term.num_qubits != self.num_qubits:
            raise ValueError("term qubit count mismatch")
        self.terms.append(term)
        return self

    def __iter__(self) -> Iterator[PauliString]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __add__(self, other: "PauliSum") -> "PauliSum":
        return PauliSum(self.terms + list(other.terms))

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum([t * scalar for t in self.terms])

    __rmul__ = __mul__

    def simplify(self, atol: float = 1e-12) -> "PauliSum":
        """Merge equal labels and drop negligible coefficients."""
        merged: Dict[str, complex] = {}
        for t in self.terms:
            merged[t.label] = merged.get(t.label, 0.0) + t.coefficient
        return PauliSum(
            PauliString(label, coeff)
            for label, coeff in merged.items()
            if abs(coeff) > atol
        )

    def matrix(self) -> np.ndarray:
        """Dense matrix (exponential in qubits; testing only)."""
        if not self.terms:
            raise ValueError("empty PauliSum")
        dim = 2 ** self.num_qubits
        out = np.zeros((dim, dim), dtype=complex)
        for t in self.terms:
            out += t.matrix()
        return out

    def expectation(self, state: np.ndarray, num_qubits: int) -> float:
        """Expectation value against a statevector."""
        if self.terms and self.num_qubits != num_qubits:
            raise ValueError("observable qubit count mismatch")
        return float(sum(t.expectation(state) for t in self.terms))

    def expectation_from_counts(self, counts: Mapping[str, int]) -> float:
        """Estimate the expectation from Z-basis measurement counts.

        Only valid when every term is diagonal (labels over ``I`` and
        ``Z``), which covers Ising Hamiltonians and the parity readouts
        the QML models use with shots.
        """
        for t in self.terms:
            if set(t.label) - {"I", "Z"}:
                raise ValueError(
                    f"term {t.label} is not diagonal in the Z basis"
                )
        total_shots = sum(counts.values())
        if total_shots == 0:
            raise ValueError("empty counts")
        value = 0.0
        for bitstring, freq in counts.items():
            weight = freq / total_shots
            for t in self.terms:
                sign = 1.0
                for char, bit in zip(t.label, bitstring):
                    if char == "Z" and bit == "1":
                        sign = -sign
                value += weight * t.coefficient.real * sign
        return value

    def __repr__(self) -> str:
        if not self.terms:
            return "PauliSum([])"
        return " + ".join(repr(t) for t in self.terms)


def ising_hamiltonian(linear: Mapping[int, float],
                      quadratic: Mapping[Tuple[int, int], float],
                      num_qubits: int,
                      constant: float = 0.0) -> PauliSum:
    """Build ``H = const + sum h_i Z_i + sum J_ij Z_i Z_j`` as a PauliSum.

    This is the bridge from :class:`repro.annealing.ising.IsingModel`
    to the gate-model solvers (QAOA, exact diagonalization).
    """
    out = PauliSum()
    if constant:
        out.add(PauliString("I" * num_qubits, constant))
    for qubit, h in linear.items():
        if h:
            out.add(single_z(qubit, num_qubits, h))
    for (a, b), j in quadratic.items():
        if j:
            out.add(zz(a, b, num_qubits, j))
    return out
