"""Dense statevector simulator.

The statevector is stored as a complex vector of length ``2**n`` where
qubit 0 is the **most significant** bit of the basis-state index
(big-endian): basis state ``|q0 q1 ... q_{n-1}>`` has index
``sum(q_i << (n - 1 - i))``. Gates are applied with tensor contractions
over the reshaped ``(2,) * n`` array, which costs ``O(2**n)`` per gate
rather than the naive ``O(4**n)`` matrix product.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from .circuit import Circuit
from .gates import gate_matrix


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state ``|0...0>``."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(num_qubits: int, bits: Sequence[int]) -> np.ndarray:
    """Computational basis state for the given bit string (qubit 0 first)."""
    if len(bits) != num_qubits:
        raise ValueError("bit string length must equal num_qubits")
    index = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        index = (index << 1) | b
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def apply_matrix(state: np.ndarray, matrix: np.ndarray,
                 qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a ``2^k x 2^k`` unitary to the given qubits of a statevector.

    Returns a new array; the input is not modified.
    """
    k = len(qubits)
    psi = state.reshape((2,) * num_qubits)
    mat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    psi = np.tensordot(mat, psi, axes=(tuple(range(k, 2 * k)), tuple(qubits)))
    psi = np.moveaxis(psi, range(k), qubits)
    return np.ascontiguousarray(psi).reshape(-1)


class StatevectorSimulator:
    """Exact simulator producing statevectors, probabilities and samples.

    Parameters
    ----------
    seed:
        Seed for the sampling generator. Simulation itself is
        deterministic; only :meth:`sample_counts` consumes randomness.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit,
            initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Execute a fully bound circuit and return the final statevector."""
        n = circuit.num_qubits
        if initial_state is None:
            state = zero_state(n)
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2 ** n,):
                raise ValueError(
                    f"initial state must have length {2 ** n}"
                )
        collector = telemetry.get_collector()
        if collector is None:  # disabled: plain loop, zero accounting
            for inst in circuit.instructions:
                state = apply_matrix(state, inst.matrix(), inst.qubits, n)
            return state
        with collector.span("quantum.run"):
            for inst in circuit.instructions:
                state = apply_matrix(state, inst.matrix(), inst.qubits, n)
        collector.count("quantum.circuit_evaluations")
        collector.count("quantum.gate_applications",
                        len(circuit.instructions))
        tally: Dict[str, int] = {}
        for inst in circuit.instructions:
            tally[inst.name] = tally.get(inst.name, 0) + 1
        for name, occurrences in tally.items():
            collector.count(f"quantum.gate.{name}", occurrences)
        collector.gauge("quantum.statevector_bytes", int(state.nbytes))
        return state

    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Measurement probabilities over all ``2**n`` basis states."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def sample_counts(self, circuit: Circuit, shots: int) -> Dict[str, int]:
        """Sample measurement outcomes; keys are bitstrings, qubit 0 first."""
        if shots < 1:
            raise ValueError("shots must be positive")
        telemetry.count("quantum.shots", shots)
        probs = self.probabilities(circuit)
        n = circuit.num_qubits
        outcomes = self._rng.choice(len(probs), size=shots, p=_renorm(probs))
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(outcome, f"0{n}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation(self, circuit: Circuit, observable) -> float:
        """Exact expectation value ``<psi|O|psi>`` of a Pauli observable.

        ``observable`` is a :class:`repro.quantum.operators.PauliString`
        or :class:`~repro.quantum.operators.PauliSum`.
        """
        from .operators import PauliString, PauliSum

        state = self.run(circuit)
        if isinstance(observable, PauliString):
            observable = PauliSum([observable])
        if not isinstance(observable, PauliSum):
            raise TypeError(
                "observable must be a PauliString or PauliSum, "
                f"got {type(observable).__name__}"
            )
        return observable.expectation(state, circuit.num_qubits)


def _renorm(probs: np.ndarray) -> np.ndarray:
    total = probs.sum()
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ValueError(f"probabilities sum to {total}, state not normalized")
    return probs / total


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Squared overlap ``|<a|b>|^2`` between two pure states."""
    a = np.asarray(state_a, dtype=complex)
    b = np.asarray(state_b, dtype=complex)
    if a.shape != b.shape:
        raise ValueError("states must have the same dimension")
    return float(abs(np.vdot(a, b)) ** 2)


def marginal_probabilities(state: np.ndarray,
                           qubits: Sequence[int]) -> np.ndarray:
    """Marginal distribution over a subset of qubits (given order)."""
    n = int(round(math.log2(state.size)))
    if 2 ** n != state.size:
        raise ValueError("state length must be a power of two")
    probs = (np.abs(state) ** 2).reshape((2,) * n)
    keep = list(qubits)
    drop = tuple(i for i in range(n) if i not in keep)
    marg = probs.sum(axis=drop) if drop else probs
    # ``sum`` keeps remaining axes in ascending qubit order; permute to
    # the caller's requested order.
    ascending = sorted(keep)
    perm = [ascending.index(q) for q in keep]
    return np.transpose(marg, perm).reshape(-1)
