"""Dense statevector simulator.

The statevector is stored as a complex vector of length ``2**n`` where
qubit 0 is the **most significant** bit of the basis-state index
(big-endian): basis state ``|q0 q1 ... q_{n-1}>`` has index
``sum(q_i << (n - 1 - i))``. Gates are applied with tensor contractions
over the reshaped ``(2,) * n`` array, which costs ``O(2**n)`` per gate
rather than the naive ``O(4**n)`` matrix product.
"""

from __future__ import annotations

import contextlib
import math
import time
from typing import Dict, Optional, Sequence

import numpy as np

from .. import telemetry
from ..telemetry import metrics as _metrics
from .circuit import Circuit
from .gates import (
    GATE_NUM_PARAMS,
    batch_gate_diagonal,
    batch_gate_matrix,
    gate_diagonal,
    gate_matrix,
)


def zero_state(num_qubits: int) -> np.ndarray:
    """The all-zeros computational basis state ``|0...0>``."""
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def basis_state(num_qubits: int, bits: Sequence[int]) -> np.ndarray:
    """Computational basis state for the given bit string (qubit 0 first)."""
    if len(bits) != num_qubits:
        raise ValueError("bit string length must equal num_qubits")
    index = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        index = (index << 1) | b
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[index] = 1.0
    return state


def apply_matrix(state: np.ndarray, matrix: np.ndarray,
                 qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a ``2^k x 2^k`` unitary to the given qubits of a statevector.

    Returns a new array; the input is not modified.
    """
    k = len(qubits)
    psi = state.reshape((2,) * num_qubits)
    mat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    psi = np.tensordot(mat, psi, axes=(tuple(range(k, 2 * k)), tuple(qubits)))
    psi = np.moveaxis(psi, range(k), qubits)
    return np.ascontiguousarray(psi).reshape(-1)


def apply_matrix_batch(states: np.ndarray, matrix: np.ndarray,
                       qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a gate to a *batch* of statevectors in one contraction.

    ``states`` has shape ``(batch, 2**num_qubits)``. ``matrix`` is
    either one shared ``(2**k, 2**k)`` unitary or a stack of
    per-element unitaries ``(batch, 2**k, 2**k)``. Returns a new
    ``(batch, 2**num_qubits)`` array; the input is not modified.
    """
    states = np.asarray(states, dtype=complex)
    if states.ndim != 2:
        raise ValueError("states must be a (batch, 2**n) matrix")
    batch = states.shape[0]
    k = len(qubits)
    mat = np.asarray(matrix, dtype=complex)
    psi = states.reshape((batch,) + (2,) * num_qubits)
    # Move the target-qubit axes to the back, flatten everything else,
    # and hit the whole batch with one (batched) matmul.
    axes = tuple(q + 1 for q in qubits)
    back = tuple(range(num_qubits + 1 - k, num_qubits + 1))
    psi = np.moveaxis(psi, axes, back)
    shuffled_shape = psi.shape
    psi = np.ascontiguousarray(psi).reshape(batch, -1, 2 ** k)
    if mat.ndim == 2:
        psi = psi @ mat.T
    elif mat.ndim == 3:
        if mat.shape[0] != batch:
            raise ValueError("per-element matrix stack must match batch size")
        psi = np.matmul(psi, np.swapaxes(mat, -1, -2))
    else:
        raise ValueError("matrix must be 2-D (shared) or 3-D (per-element)")
    psi = psi.reshape(shuffled_shape)
    psi = np.moveaxis(psi, back, axes)
    return np.ascontiguousarray(psi).reshape(batch, -1)


def apply_diagonal_batch(states: np.ndarray, diagonal: np.ndarray,
                         qubits: Sequence[int],
                         num_qubits: int) -> np.ndarray:
    """Apply a diagonal gate to a batch of statevectors elementwise.

    ``diagonal`` is the gate's matrix diagonal: one shared ``(2**k,)``
    vector or a per-element ``(batch, 2**k)`` stack. This is the fast
    path for rz/p/cp/crz/rzz-style phase gates (IQP feature maps, QAOA
    cost layers): a broadcast multiply instead of a contraction.
    """
    states = np.asarray(states, dtype=complex)
    if states.ndim != 2:
        raise ValueError("states must be a (batch, 2**n) matrix")
    batch = states.shape[0]
    k = len(qubits)
    diag = np.asarray(diagonal, dtype=complex)
    if diag.ndim == 1:
        diag = diag.reshape((1,) + (2,) * k)
    elif diag.ndim == 2:
        if diag.shape[0] != batch:
            raise ValueError("per-element diagonal must match batch size")
        diag = diag.reshape((batch,) + (2,) * k)
    else:
        raise ValueError("diagonal must be 1-D (shared) or 2-D (per-element)")
    # Pad trailing singleton axes then move the gate axes onto the
    # target qubit axes so the multiply broadcasts across the rest.
    diag = diag.reshape(diag.shape + (1,) * (num_qubits - k))
    diag = np.moveaxis(diag, range(1, k + 1), [q + 1 for q in qubits])
    psi = states.reshape((batch,) + (2,) * num_qubits)
    return (psi * diag).reshape(batch, -1)


def _record_run_metrics(registry, mode: str, gates: int,
                        elapsed: float, state_bytes: int) -> None:
    """Per-run live metrics: gate throughput counters, run-time
    histogram and the peak statevector footprint gauge."""
    registry.counter(
        "quantum_gate_applications_total",
        "gate applications executed by the statevector simulator",
        ("mode",)).labels(mode=mode).inc(gates)
    registry.histogram(
        "quantum_run_seconds",
        "statevector simulator run wall clock",
        ("mode",)).labels(mode=mode).observe(elapsed)
    registry.gauge(
        "quantum_statevector_peak_bytes",
        "largest statevector allocation observed").set_max(state_bytes)


class StatevectorSimulator:
    """Exact simulator producing statevectors, probabilities and samples.

    Parameters
    ----------
    seed:
        Seed for the sampling generator. Simulation itself is
        deterministic; only :meth:`sample_counts` consumes randomness.
    """

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit,
            initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Execute a fully bound circuit and return the final statevector."""
        n = circuit.num_qubits
        if initial_state is None:
            state = zero_state(n)
        else:
            state = np.asarray(initial_state, dtype=complex).copy()
            if state.shape != (2 ** n,):
                raise ValueError(
                    f"initial state must have length {2 ** n}"
                )
        collector = telemetry.get_collector()
        tracer = telemetry.get_tracer()
        registry = _metrics.get_registry()
        if collector is None and tracer is None and registry is None:
            # disabled: plain loop, zero accounting
            for inst in circuit.instructions:
                state = apply_matrix(state, inst.matrix(), inst.qubits, n)
            return state
        run_start = time.perf_counter() if registry is not None else 0.0
        if collector is not None:
            span = collector.span("quantum.run")
        elif tracer is not None:
            span = tracer.span("quantum.run")
        else:
            span = contextlib.nullcontext()
        with span:
            if tracer is not None:  # per-gate timeline events
                for inst in circuit.instructions:
                    start = tracer.timestamp_us()
                    state = apply_matrix(state, inst.matrix(),
                                         inst.qubits, n)
                    tracer.complete(
                        f"gate.{inst.name}", start, category="gate",
                        args={"qubits": list(inst.qubits)},
                    )
            else:
                for inst in circuit.instructions:
                    state = apply_matrix(state, inst.matrix(),
                                         inst.qubits, n)
        if registry is not None:
            _record_run_metrics(registry, "single",
                                len(circuit.instructions),
                                time.perf_counter() - run_start,
                                int(state.nbytes))
        if collector is None:
            return state
        collector.count("quantum.circuit_evaluations")
        collector.count("quantum.gate_applications",
                        len(circuit.instructions))
        tally: Dict[str, int] = {}
        for inst in circuit.instructions:
            tally[inst.name] = tally.get(inst.name, 0) + 1
        for name, occurrences in tally.items():
            collector.count(f"quantum.gate.{name}", occurrences)
        collector.gauge("quantum.statevector_bytes", int(state.nbytes))
        return state

    def run_batch(self, circuits: Sequence[Circuit],
                  initial_states: Optional[np.ndarray] = None) -> np.ndarray:
        """Execute many bound circuits at once; returns ``(batch, 2**n)``.

        All circuits must act on the same number of qubits. When the
        circuits are *structurally identical* — the same gate names on
        the same qubits in the same order, only parameter values
        differing (one encoding template bound to many data points, one
        ansatz at many shift values) — every layer is applied to the
        whole batch in a single vectorized operation, with a broadcast
        phase multiply for diagonal gates. Heterogeneous batches fall
        back to per-circuit :meth:`run` and stay exactly equivalent.
        """
        circuits = list(circuits)
        if not circuits:
            raise ValueError("run_batch needs at least one circuit")
        n = circuits[0].num_qubits
        if any(c.num_qubits != n for c in circuits):
            raise ValueError("all circuits must have the same qubit count")
        batch = len(circuits)
        if initial_states is None:
            states = np.zeros((batch, 2 ** n), dtype=complex)
            states[:, 0] = 1.0
        else:
            states = np.asarray(initial_states, dtype=complex).copy()
            if states.shape != (batch, 2 ** n):
                raise ValueError(
                    f"initial states must have shape {(batch, 2 ** n)}"
                )
        if not _structurally_identical(circuits):
            return np.stack([
                self.run(c, initial_state=states[i])
                for i, c in enumerate(circuits)
            ])
        template = circuits[0].instructions
        collector = telemetry.get_collector()
        tracer = telemetry.get_tracer()
        registry = _metrics.get_registry()
        if collector is None and tracer is None and registry is None:
            # disabled: plain loop, zero accounting
            for position in range(len(template)):
                states = _apply_instruction_batch(
                    states, circuits, position, n
                )
            return states
        run_start = time.perf_counter() if registry is not None else 0.0
        if collector is not None:
            span = collector.span("quantum.run_batch")
        elif tracer is not None:
            span = tracer.span("quantum.run_batch")
        else:
            span = contextlib.nullcontext()
        with span:
            if tracer is not None:  # one event per template position
                for position in range(len(template)):
                    inst = template[position]
                    start = tracer.timestamp_us()
                    states = _apply_instruction_batch(
                        states, circuits, position, n
                    )
                    tracer.complete(
                        f"gate_batch.{inst.name}", start,
                        category="gate_batch",
                        args={"qubits": list(inst.qubits),
                              "batch": batch},
                    )
            else:
                for position in range(len(template)):
                    states = _apply_instruction_batch(
                        states, circuits, position, n
                    )
        if registry is not None:
            _record_run_metrics(registry, "batch",
                                batch * len(template),
                                time.perf_counter() - run_start,
                                int(states.nbytes))
        if collector is None:
            return states
        collector.count("quantum.circuit_evaluations", batch)
        collector.count("quantum.gate_applications", batch * len(template))
        tally: Dict[str, int] = {}
        for inst in template:
            tally[inst.name] = tally.get(inst.name, 0) + 1
        for name, occurrences in tally.items():
            collector.count(f"quantum.gate.{name}", occurrences * batch)
        collector.gauge("quantum.statevector_bytes", int(states.nbytes))
        return states

    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Measurement probabilities over all ``2**n`` basis states."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def sample_counts(self, circuit: Circuit, shots: int) -> Dict[str, int]:
        """Sample measurement outcomes; keys are bitstrings, qubit 0 first."""
        if shots < 1:
            raise ValueError("shots must be positive")
        telemetry.count("quantum.shots", shots)
        probs = self.probabilities(circuit)
        n = circuit.num_qubits
        outcomes = self._rng.choice(len(probs), size=shots, p=_renorm(probs))
        tallies = np.bincount(outcomes, minlength=len(probs))
        return {
            format(int(index), f"0{n}b"): int(tallies[index])
            for index in np.nonzero(tallies)[0]
        }

    def expectation(self, circuit: Circuit, observable) -> float:
        """Exact expectation value ``<psi|O|psi>`` of a Pauli observable.

        ``observable`` is a :class:`repro.quantum.operators.PauliString`
        or :class:`~repro.quantum.operators.PauliSum`.
        """
        from .operators import PauliString, PauliSum

        state = self.run(circuit)
        if isinstance(observable, PauliString):
            observable = PauliSum([observable])
        if not isinstance(observable, PauliSum):
            raise TypeError(
                "observable must be a PauliString or PauliSum, "
                f"got {type(observable).__name__}"
            )
        return observable.expectation(state, circuit.num_qubits)


def _structurally_identical(circuits: Sequence[Circuit]) -> bool:
    """True when all circuits share gate names/qubits in order."""
    template = circuits[0].instructions
    for circuit in circuits[1:]:
        if len(circuit.instructions) != len(template):
            return False
        for inst, ref in zip(circuit.instructions, template):
            if inst.name != ref.name or inst.qubits != ref.qubits:
                return False
    return True


def _apply_instruction_batch(states: np.ndarray,
                             circuits: Sequence[Circuit],
                             position: int, num_qubits: int) -> np.ndarray:
    """Apply instruction ``position`` of every circuit to the batch."""
    reference = circuits[0].instructions[position]
    name, qubits = reference.name, reference.qubits
    if GATE_NUM_PARAMS[name] == 0:
        diag = gate_diagonal(name)
        if diag is not None:
            return apply_diagonal_batch(states, diag, qubits, num_qubits)
        return apply_matrix_batch(states, gate_matrix(name), qubits,
                                  num_qubits)
    try:
        values = np.array(
            [[float(p) for p in c.instructions[position].params]
             for c in circuits],
            dtype=float,
        )
    except TypeError:
        raise ValueError(
            f"instruction {name} has unbound parameters; bind first"
        ) from None
    if np.all(values == values[0]):  # one shared matrix for the batch
        diag = gate_diagonal(name, values[0])
        if diag is not None:
            return apply_diagonal_batch(states, diag, qubits, num_qubits)
        return apply_matrix_batch(states, gate_matrix(name, values[0]),
                                  qubits, num_qubits)
    diag = batch_gate_diagonal(name, values)
    if diag is not None:
        return apply_diagonal_batch(states, diag, qubits, num_qubits)
    return apply_matrix_batch(states, batch_gate_matrix(name, values),
                              qubits, num_qubits)


def _renorm(probs: np.ndarray) -> np.ndarray:
    total = probs.sum()
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ValueError(f"probabilities sum to {total}, state not normalized")
    return probs / total


def fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Squared overlap ``|<a|b>|^2`` between two pure states."""
    a = np.asarray(state_a, dtype=complex)
    b = np.asarray(state_b, dtype=complex)
    if a.shape != b.shape:
        raise ValueError("states must have the same dimension")
    return float(abs(np.vdot(a, b)) ** 2)


def marginal_probabilities(state: np.ndarray,
                           qubits: Sequence[int]) -> np.ndarray:
    """Marginal distribution over a subset of qubits (given order)."""
    n = int(round(math.log2(state.size)))
    if 2 ** n != state.size:
        raise ValueError("state length must be a power of two")
    probs = (np.abs(state) ** 2).reshape((2,) * n)
    keep = [int(q) for q in qubits]
    for q in keep:
        if not 0 <= q < n:
            raise ValueError(f"qubit {q} out of range for {n}-qubit state")
    keep_set = set(keep)
    if len(keep_set) != len(keep):
        raise ValueError(f"duplicate qubits in {tuple(qubits)}")
    drop = tuple(i for i in range(n) if i not in keep_set)
    marg = probs.sum(axis=drop) if drop else probs
    # ``sum`` keeps remaining axes in ascending qubit order; permute to
    # the caller's requested order.
    ascending = sorted(keep)
    perm = [ascending.index(q) for q in keep]
    return np.transpose(marg, perm).reshape(-1)
