"""Gate-model quantum computing substrate.

A self-contained circuit IR plus exact statevector and density-matrix
simulators, the foundation every QML component in this library runs on.
"""

from .circuit import Circuit, Instruction, Parameter, ParameterExpression, parameter_vector
from .grover import (
    GroverResult,
    grover_minimum_search,
    grover_search,
    grover_search_predicate,
    optimal_iterations,
)
from .amplitude_estimation import (
    AmplitudeEstimationResult,
    amplitude_estimation,
    classical_sample_estimate,
    quantum_counting,
)
from .hhl import HHLResult, classical_reference, hhl_solve
from .swap_test import swap_test_circuit, swap_test_overlap
from .phase_estimation import (
    PhaseEstimationResult,
    phase_estimation,
    phase_from_eigenvalue,
)
from .qft import inverse_qft_circuit, qft_circuit, qft_matrix
from .serialization import circuit_from_qasm, circuit_to_qasm
from .tomography import (
    TomographyResult,
    project_to_physical,
    reconstruction_error,
    state_tomography,
)
from .transpile import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
    remove_identities,
)
from .density import DensityMatrixSimulator, purity, von_neumann_entropy
from .gates import gate_matrix, is_unitary, controlled
from .measurement import expectation_with_shots
from .mitigation import (
    ReadoutMitigator,
    ZNEResult,
    fold_circuit,
    zero_noise_extrapolation,
)
from .noise import (
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_damping_channel,
    phase_flip_channel,
)
from .operators import PauliString, PauliSum, ising_hamiltonian, single_z, zz
from .random_circuits import random_layered_circuit, random_statevector
from .statevector import (
    StatevectorSimulator,
    apply_diagonal_batch,
    apply_matrix,
    apply_matrix_batch,
    basis_state,
    fidelity,
    marginal_probabilities,
    zero_state,
)

__all__ = [
    "Circuit",
    "GroverResult",
    "grover_minimum_search",
    "grover_search",
    "grover_search_predicate",
    "optimal_iterations",
    "AmplitudeEstimationResult",
    "amplitude_estimation",
    "classical_sample_estimate",
    "quantum_counting",
    "swap_test_circuit",
    "swap_test_overlap",
    "HHLResult",
    "classical_reference",
    "hhl_solve",
    "PhaseEstimationResult",
    "phase_estimation",
    "phase_from_eigenvalue",
    "inverse_qft_circuit",
    "qft_circuit",
    "qft_matrix",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "TomographyResult",
    "project_to_physical",
    "reconstruction_error",
    "state_tomography",
    "cancel_adjacent_inverses",
    "merge_rotations",
    "optimize_circuit",
    "remove_identities",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "parameter_vector",
    "DensityMatrixSimulator",
    "purity",
    "von_neumann_entropy",
    "gate_matrix",
    "is_unitary",
    "controlled",
    "expectation_with_shots",
    "ReadoutMitigator",
    "ZNEResult",
    "fold_circuit",
    "zero_noise_extrapolation",
    "NoiseModel",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "depolarizing_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "PauliString",
    "PauliSum",
    "ising_hamiltonian",
    "single_z",
    "zz",
    "random_layered_circuit",
    "random_statevector",
    "StatevectorSimulator",
    "apply_diagonal_batch",
    "apply_matrix",
    "apply_matrix_batch",
    "basis_state",
    "fidelity",
    "marginal_probabilities",
    "zero_state",
]
