"""HHL quantum linear-system solver.

Harrow-Hassidim-Lloyd: given Hermitian ``A`` and ``|b>``, prepare a
state proportional to ``A^{-1} |b>`` — the primitive behind the
exponential-speedup claims for least squares, SVMs and recommendation
systems that the tutorial surveys.

This implementation runs the textbook circuit at matrix granularity on
the statevector simulator:

1. load ``|b>`` into the system register,
2. quantum phase estimation with ``U = exp(i A t)`` onto a clock
   register,
3. a clock-controlled ancilla rotation ``RY(2 asin(C / lambda))``,
4. inverse QPE (uncompute the clock),
5. postselect the ancilla on ``|1>``.

Everything is exact up to the clock register's phase resolution, which
is the real approximation error of HHL; tests use eigenvalues exactly
representable in the clock to get machine-precision solutions, and
non-representable ones to watch the error appear — faithful to how the
algorithm behaves on hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .qft import inverse_qft_circuit
from .statevector import apply_matrix


@dataclass
class HHLResult:
    """Outcome of an HHL run."""

    solution: np.ndarray          # normalized A^{-1} b estimate
    success_probability: float    # P(ancilla = 1)
    num_clock_bits: int

    def fidelity_with(self, reference: np.ndarray) -> float:
        """Squared overlap with a reference (normalized) solution."""
        reference = np.asarray(reference, dtype=complex)
        reference = reference / np.linalg.norm(reference)
        return float(abs(np.vdot(self.solution, reference)) ** 2)


def hhl_solve(matrix: np.ndarray, rhs: np.ndarray,
              num_clock_bits: int = 4,
              evolution_time: Optional[float] = None) -> HHLResult:
    """Run HHL for ``A x = b`` and return the normalized solution state.

    Parameters
    ----------
    matrix:
        Hermitian, positive-definite ``A`` of power-of-two dimension.
    rhs:
        The right-hand side ``b`` (any nonzero vector; normalized
        internally — HHL only ever sees ``|b>``).
    num_clock_bits:
        Phase-estimation resolution; eigenvalues are read to
        ``1 / 2**num_clock_bits`` of the scaled spectrum.
    evolution_time:
        ``t`` in ``U = exp(i A t)``. Defaults to a value that maps the
        largest eigenvalue just below the top of the clock range,
        the standard heuristic.
    """
    a = np.asarray(matrix, dtype=complex)
    b = np.asarray(rhs, dtype=complex).reshape(-1)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if not np.allclose(a, a.conj().T, atol=1e-10):
        raise ValueError("matrix must be Hermitian")
    system_qubits = int(round(math.log2(a.shape[0])))
    if 2 ** system_qubits != a.shape[0]:
        raise ValueError("matrix dimension must be a power of two")
    if b.shape != (a.shape[0],):
        raise ValueError("rhs dimension mismatch")
    if np.linalg.norm(b) == 0:
        raise ValueError("rhs must be nonzero")
    if num_clock_bits < 1:
        raise ValueError("num_clock_bits must be positive")

    eigenvalues, eigenvectors = np.linalg.eigh(a)
    if eigenvalues.min() <= 0:
        raise ValueError("matrix must be positive definite")

    clock_size = 2 ** num_clock_bits
    if evolution_time is None:
        # Map lambda_max to (clock_size - 1) / clock_size of a turn.
        evolution_time = (2.0 * math.pi * (clock_size - 1)
                          / (clock_size * eigenvalues.max()))
    unitary = (eigenvectors
               @ np.diag(np.exp(1j * eigenvalues * evolution_time))
               @ eigenvectors.conj().T)

    # Register layout (big-endian): clock qubits 0..c-1, system qubits
    # c..c+m-1, ancilla last.
    total_qubits = num_clock_bits + system_qubits + 1
    ancilla = total_qubits - 1
    system = tuple(range(num_clock_bits, num_clock_bits + system_qubits))

    state = np.zeros(2 ** total_qubits, dtype=complex)
    b_normalized = b / np.linalg.norm(b)
    # |0...0>_clock |b>_system |0>_ancilla
    base = np.kron(np.kron(_basis0(clock_size), b_normalized),
                   _basis0(2))
    state = base

    # 1. Hadamards on the clock register.
    hadamard = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
    for q in range(num_clock_bits):
        state = apply_matrix(state, hadamard, (q,), total_qubits)

    # 2. Controlled-U^(2^k) (clock qubit k controls power 2^(c-1-k)).
    for k in range(num_clock_bits):
        power = 2 ** (num_clock_bits - 1 - k)
        u_power = np.linalg.matrix_power(unitary, power)
        state = apply_matrix(state, _controlled(u_power),
                             (k, *system), total_qubits)

    # 3. Inverse QFT on the clock.
    for inst in inverse_qft_circuit(num_clock_bits).instructions:
        state = apply_matrix(state, inst.matrix(), inst.qubits,
                             total_qubits)

    # 4. Clock-conditioned ancilla rotation: for clock value l != 0,
    #    RY(2 asin(C / lambda_l)) with lambda_l the eigenvalue whose
    #    scaled phase rounds to l. C = smallest representable lambda.
    lambda_of = [
        2.0 * math.pi * l / (clock_size * evolution_time)
        for l in range(clock_size)
    ]
    c_constant = min(v for v in lambda_of[1:])
    rotation = np.zeros((2 * clock_size, 2 * clock_size), dtype=complex)
    for l in range(clock_size):
        if l == 0:
            block = np.eye(2)
        else:
            ratio = min(1.0, c_constant / lambda_of[l])
            theta = 2.0 * math.asin(ratio)
            block = np.array(
                [[math.cos(theta / 2), -math.sin(theta / 2)],
                 [math.sin(theta / 2), math.cos(theta / 2)]],
            )
        rotation[2 * l: 2 * l + 2, 2 * l: 2 * l + 2] = block
    clock_and_ancilla = tuple(range(num_clock_bits)) + (ancilla,)
    state = apply_matrix(state, rotation, clock_and_ancilla,
                         total_qubits)

    # 5. Uncompute: QFT on the clock, inverse controlled-U, Hadamards.
    qft = inverse_qft_circuit(num_clock_bits).inverse()
    for inst in qft.instructions:
        state = apply_matrix(state, inst.matrix(), inst.qubits,
                             total_qubits)
    for k in range(num_clock_bits):
        power = 2 ** (num_clock_bits - 1 - k)
        u_power = np.linalg.matrix_power(unitary, power)
        state = apply_matrix(state, _controlled(u_power.conj().T),
                             (k, *system), total_qubits)
    for q in range(num_clock_bits):
        state = apply_matrix(state, hadamard, (q,), total_qubits)

    # 6. Postselect ancilla = 1 and clock = 0, read the system register.
    tensor = state.reshape((2,) * total_qubits)
    clock_zero = (0,) * num_clock_bits
    system_block = tensor[clock_zero][..., 1]  # ancilla = 1
    amplitude = system_block.reshape(-1)
    success = float(np.linalg.norm(amplitude) ** 2)
    if success < 1e-12:
        raise RuntimeError("postselection never succeeds; increase "
                           "num_clock_bits or check conditioning")
    return HHLResult(
        solution=amplitude / np.linalg.norm(amplitude),
        success_probability=success,
        num_clock_bits=num_clock_bits,
    )


def classical_reference(matrix: np.ndarray,
                        rhs: np.ndarray) -> np.ndarray:
    """Normalized ``A^{-1} b`` for fidelity comparisons."""
    solution = np.linalg.solve(np.asarray(matrix, dtype=complex),
                               np.asarray(rhs, dtype=complex))
    return solution / np.linalg.norm(solution)


def _basis0(dim: int) -> np.ndarray:
    vec = np.zeros(dim, dtype=complex)
    vec[0] = 1.0
    return vec


def _controlled(unitary: np.ndarray) -> np.ndarray:
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out
