"""Quantum gate library.

Every gate used anywhere in the library is defined here, either as a
fixed unitary matrix (:data:`FIXED_GATES`) or as a factory mapping
parameter values to a unitary (:data:`PARAMETRIC_GATES`).

Conventions
-----------
* Matrices act on column statevectors in the computational basis.
* For multi-qubit gates the first qubit passed to the circuit is the
  most significant bit of the matrix index (big-endian within the gate).
* All parametric rotation gates are of the form
  ``exp(-i * theta / 2 * G)`` for a Hermitian generator ``G`` with
  eigenvalues +-1, which is exactly the family covered by the two-term
  parameter-shift rule used in :mod:`repro.qml.gradients`.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, Sequence

import numpy as np

Matrix = np.ndarray

_SQRT2 = math.sqrt(2.0)

I2 = np.eye(2, dtype=complex)

PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG_GATE = np.array([[1, 0], [0, -1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
TDG_GATE = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
SX_GATE = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

CNOT = np.array(
    [[1, 0, 0, 0],
     [0, 1, 0, 0],
     [0, 0, 0, 1],
     [0, 0, 1, 0]],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0],
     [0, 0, 1, 0],
     [0, 1, 0, 0],
     [0, 0, 0, 1]],
    dtype=complex,
)
ISWAP = np.array(
    [[1, 0, 0, 0],
     [0, 0, 1j, 0],
     [0, 1j, 0, 0],
     [0, 0, 0, 1]],
    dtype=complex,
)
TOFFOLI = np.eye(8, dtype=complex)
TOFFOLI[[6, 7], :] = TOFFOLI[[7, 6], :]
FREDKIN = np.eye(8, dtype=complex)
FREDKIN[[5, 6], :] = FREDKIN[[6, 5], :]


def rx_matrix(theta: float) -> Matrix:
    """Rotation about the X axis: ``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> Matrix:
    """Rotation about the Y axis: ``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> Matrix:
    """Rotation about the Z axis: ``exp(-i theta Z / 2)``."""
    phase = cmath.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


def phase_matrix(lam: float) -> Matrix:
    """Diagonal phase gate ``diag(1, exp(i lam))``."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> Matrix:
    """Generic single-qubit unitary in the standard U3 parameterization."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [[c, -cmath.exp(1j * lam) * s],
         [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c]],
        dtype=complex,
    )


def crx_matrix(theta: float) -> Matrix:
    """Controlled-RX (control is the first / most significant qubit)."""
    return _controlled(rx_matrix(theta))


def cry_matrix(theta: float) -> Matrix:
    """Controlled-RY."""
    return _controlled(ry_matrix(theta))


def crz_matrix(theta: float) -> Matrix:
    """Controlled-RZ."""
    return _controlled(rz_matrix(theta))


def cphase_matrix(lam: float) -> Matrix:
    """Controlled phase gate ``diag(1, 1, 1, exp(i lam))``."""
    return np.diag([1.0, 1.0, 1.0, cmath.exp(1j * lam)]).astype(complex)


def rxx_matrix(theta: float) -> Matrix:
    """Two-qubit XX interaction: ``exp(-i theta XX / 2)``."""
    return _two_qubit_rotation(np.kron(PAULI_X, PAULI_X), theta)


def ryy_matrix(theta: float) -> Matrix:
    """Two-qubit YY interaction: ``exp(-i theta YY / 2)``."""
    return _two_qubit_rotation(np.kron(PAULI_Y, PAULI_Y), theta)


def rzz_matrix(theta: float) -> Matrix:
    """Two-qubit ZZ interaction: ``exp(-i theta ZZ / 2)``.

    This is the workhorse of QAOA cost layers for Ising problems.
    """
    return _two_qubit_rotation(np.kron(PAULI_Z, PAULI_Z), theta)


def _two_qubit_rotation(generator: Matrix, theta: float) -> Matrix:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return c * np.eye(4, dtype=complex) - 1j * s * generator


def _controlled(unitary: Matrix) -> Matrix:
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out


def controlled(unitary: Matrix, num_controls: int = 1) -> Matrix:
    """Return the controlled version of an arbitrary unitary.

    Controls are prepended as the most significant qubits.
    """
    if num_controls < 1:
        raise ValueError("num_controls must be >= 1")
    out = np.asarray(unitary, dtype=complex)
    for _ in range(num_controls):
        out = _controlled(out)
    return out


#: Fixed (non-parametric) gates, keyed by lowercase name.
FIXED_GATES: Dict[str, Matrix] = {
    "i": I2,
    "x": PAULI_X,
    "y": PAULI_Y,
    "z": PAULI_Z,
    "h": HADAMARD,
    "s": S_GATE,
    "sdg": SDG_GATE,
    "t": T_GATE,
    "tdg": TDG_GATE,
    "sx": SX_GATE,
    "cx": CNOT,
    "cz": CZ,
    "swap": SWAP,
    "iswap": ISWAP,
    "ccx": TOFFOLI,
    "cswap": FREDKIN,
}

#: Parametric gate factories, keyed by lowercase name.
PARAMETRIC_GATES: Dict[str, Callable[..., Matrix]] = {
    "rx": rx_matrix,
    "ry": ry_matrix,
    "rz": rz_matrix,
    "p": phase_matrix,
    "u3": u3_matrix,
    "crx": crx_matrix,
    "cry": cry_matrix,
    "crz": crz_matrix,
    "cp": cphase_matrix,
    "rxx": rxx_matrix,
    "ryy": ryy_matrix,
    "rzz": rzz_matrix,
}

#: Number of qubits each gate acts on.
GATE_ARITY: Dict[str, int] = {
    "i": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1,
    "t": 1, "tdg": 1, "sx": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1,
    "u3": 1,
    "cx": 2, "cz": 2, "swap": 2, "iswap": 2, "crx": 2, "cry": 2,
    "crz": 2, "cp": 2, "rxx": 2, "ryy": 2, "rzz": 2,
    "ccx": 3, "cswap": 3,
}

#: Number of scalar parameters each parametric gate takes.
GATE_NUM_PARAMS: Dict[str, int] = {
    name: 0 for name in FIXED_GATES
}
GATE_NUM_PARAMS.update({
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3,
    "crx": 1, "cry": 1, "crz": 1, "cp": 1,
    "rxx": 1, "ryy": 1, "rzz": 1,
})

#: Gates whose single parameter obeys the exact two-term shift rule.
SHIFT_RULE_GATES = frozenset({"rx", "ry", "rz", "rxx", "ryy", "rzz"})


def gate_matrix(name: str, params: Sequence[float] = ()) -> Matrix:
    """Resolve a gate name plus parameter values to its unitary matrix.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the wrong number of parameters is supplied.
    """
    key = name.lower()
    expected = GATE_NUM_PARAMS.get(key)
    if expected is None:
        raise KeyError(f"unknown gate {name!r}")
    if len(params) != expected:
        raise ValueError(
            f"gate {name!r} takes {expected} parameter(s), got {len(params)}"
        )
    if key in FIXED_GATES:
        return FIXED_GATES[key]
    return PARAMETRIC_GATES[key](*params)


def is_unitary(matrix: Matrix, atol: float = 1e-10) -> bool:
    """Check whether a matrix is unitary within tolerance."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))
