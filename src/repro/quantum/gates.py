"""Quantum gate library.

Every gate used anywhere in the library is defined here, either as a
fixed unitary matrix (:data:`FIXED_GATES`) or as a factory mapping
parameter values to a unitary (:data:`PARAMETRIC_GATES`).

Conventions
-----------
* Matrices act on column statevectors in the computational basis.
* For multi-qubit gates the first qubit passed to the circuit is the
  most significant bit of the matrix index (big-endian within the gate).
* All parametric rotation gates are of the form
  ``exp(-i * theta / 2 * G)`` for a Hermitian generator ``G`` with
  eigenvalues +-1, which is exactly the family covered by the two-term
  parameter-shift rule used in :mod:`repro.qml.gradients`.
"""

from __future__ import annotations

import cmath
import math
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

Matrix = np.ndarray

_SQRT2 = math.sqrt(2.0)

I2 = np.eye(2, dtype=complex)

PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
S_GATE = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG_GATE = np.array([[1, 0], [0, -1j]], dtype=complex)
T_GATE = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
TDG_GATE = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
SX_GATE = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

CNOT = np.array(
    [[1, 0, 0, 0],
     [0, 1, 0, 0],
     [0, 0, 0, 1],
     [0, 0, 1, 0]],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0],
     [0, 0, 1, 0],
     [0, 1, 0, 0],
     [0, 0, 0, 1]],
    dtype=complex,
)
ISWAP = np.array(
    [[1, 0, 0, 0],
     [0, 0, 1j, 0],
     [0, 1j, 0, 0],
     [0, 0, 0, 1]],
    dtype=complex,
)
TOFFOLI = np.eye(8, dtype=complex)
TOFFOLI[[6, 7], :] = TOFFOLI[[7, 6], :]
FREDKIN = np.eye(8, dtype=complex)
FREDKIN[[5, 6], :] = FREDKIN[[6, 5], :]


def rx_matrix(theta: float) -> Matrix:
    """Rotation about the X axis: ``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> Matrix:
    """Rotation about the Y axis: ``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> Matrix:
    """Rotation about the Z axis: ``exp(-i theta Z / 2)``."""
    phase = cmath.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


def phase_matrix(lam: float) -> Matrix:
    """Diagonal phase gate ``diag(1, exp(i lam))``."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u3_matrix(theta: float, phi: float, lam: float) -> Matrix:
    """Generic single-qubit unitary in the standard U3 parameterization."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [[c, -cmath.exp(1j * lam) * s],
         [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c]],
        dtype=complex,
    )


def crx_matrix(theta: float) -> Matrix:
    """Controlled-RX (control is the first / most significant qubit)."""
    return _controlled(rx_matrix(theta))


def cry_matrix(theta: float) -> Matrix:
    """Controlled-RY."""
    return _controlled(ry_matrix(theta))


def crz_matrix(theta: float) -> Matrix:
    """Controlled-RZ."""
    return _controlled(rz_matrix(theta))


def cphase_matrix(lam: float) -> Matrix:
    """Controlled phase gate ``diag(1, 1, 1, exp(i lam))``."""
    return np.diag([1.0, 1.0, 1.0, cmath.exp(1j * lam)]).astype(complex)


def rxx_matrix(theta: float) -> Matrix:
    """Two-qubit XX interaction: ``exp(-i theta XX / 2)``."""
    return _two_qubit_rotation(np.kron(PAULI_X, PAULI_X), theta)


def ryy_matrix(theta: float) -> Matrix:
    """Two-qubit YY interaction: ``exp(-i theta YY / 2)``."""
    return _two_qubit_rotation(np.kron(PAULI_Y, PAULI_Y), theta)


def rzz_matrix(theta: float) -> Matrix:
    """Two-qubit ZZ interaction: ``exp(-i theta ZZ / 2)``.

    This is the workhorse of QAOA cost layers for Ising problems.
    """
    return _two_qubit_rotation(np.kron(PAULI_Z, PAULI_Z), theta)


def _two_qubit_rotation(generator: Matrix, theta: float) -> Matrix:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return c * np.eye(4, dtype=complex) - 1j * s * generator


def _controlled(unitary: Matrix) -> Matrix:
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out


def controlled(unitary: Matrix, num_controls: int = 1) -> Matrix:
    """Return the controlled version of an arbitrary unitary.

    Controls are prepended as the most significant qubits.
    """
    if num_controls < 1:
        raise ValueError("num_controls must be >= 1")
    out = np.asarray(unitary, dtype=complex)
    for _ in range(num_controls):
        out = _controlled(out)
    return out


#: Fixed (non-parametric) gates, keyed by lowercase name.
FIXED_GATES: Dict[str, Matrix] = {
    "i": I2,
    "x": PAULI_X,
    "y": PAULI_Y,
    "z": PAULI_Z,
    "h": HADAMARD,
    "s": S_GATE,
    "sdg": SDG_GATE,
    "t": T_GATE,
    "tdg": TDG_GATE,
    "sx": SX_GATE,
    "cx": CNOT,
    "cz": CZ,
    "swap": SWAP,
    "iswap": ISWAP,
    "ccx": TOFFOLI,
    "cswap": FREDKIN,
}

#: Parametric gate factories, keyed by lowercase name.
PARAMETRIC_GATES: Dict[str, Callable[..., Matrix]] = {
    "rx": rx_matrix,
    "ry": ry_matrix,
    "rz": rz_matrix,
    "p": phase_matrix,
    "u3": u3_matrix,
    "crx": crx_matrix,
    "cry": cry_matrix,
    "crz": crz_matrix,
    "cp": cphase_matrix,
    "rxx": rxx_matrix,
    "ryy": ryy_matrix,
    "rzz": rzz_matrix,
}

#: Number of qubits each gate acts on.
GATE_ARITY: Dict[str, int] = {
    "i": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1,
    "t": 1, "tdg": 1, "sx": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1,
    "u3": 1,
    "cx": 2, "cz": 2, "swap": 2, "iswap": 2, "crx": 2, "cry": 2,
    "crz": 2, "cp": 2, "rxx": 2, "ryy": 2, "rzz": 2,
    "ccx": 3, "cswap": 3,
}

#: Number of scalar parameters each parametric gate takes.
GATE_NUM_PARAMS: Dict[str, int] = {
    name: 0 for name in FIXED_GATES
}
GATE_NUM_PARAMS.update({
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3,
    "crx": 1, "cry": 1, "crz": 1, "cp": 1,
    "rxx": 1, "ryy": 1, "rzz": 1,
})

#: Gates whose single parameter obeys the exact two-term shift rule.
SHIFT_RULE_GATES = frozenset({"rx", "ry", "rz", "rxx", "ryy", "rzz"})

#: Gates whose matrix is diagonal in the computational basis. The
#: batched simulator applies these as elementwise phase multiplications
#: instead of tensor contractions.
DIAGONAL_GATES = frozenset(
    {"i", "z", "s", "sdg", "t", "tdg", "cz", "rz", "p", "cp", "crz", "rzz"}
)


@lru_cache(maxsize=4096)
def _cached_gate_matrix(key: str, params: Tuple[float, ...]) -> Matrix:
    """Memoized gate resolution; returns a read-only array.

    Keyed by ``(name, params)`` so repeated evaluations of the same
    bound circuit (gradient shifts, kernel rows, batched runs) reuse
    one matrix object instead of rebuilding it per call.
    """
    if key in FIXED_GATES:
        matrix = FIXED_GATES[key]
    else:
        matrix = PARAMETRIC_GATES[key](*params)
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Sequence[float] = ()) -> Matrix:
    """Resolve a gate name plus parameter values to its unitary matrix.

    The result is cached (LRU, keyed by name and parameter values) and
    returned read-only; copy before mutating.

    Raises
    ------
    KeyError
        If the gate name is unknown.
    ValueError
        If the wrong number of parameters is supplied.
    """
    key = name.lower()
    expected = GATE_NUM_PARAMS.get(key)
    if expected is None:
        raise KeyError(f"unknown gate {name!r}")
    if len(params) != expected:
        raise ValueError(
            f"gate {name!r} takes {expected} parameter(s), got {len(params)}"
        )
    return _cached_gate_matrix(key, tuple(float(p) for p in params))


def gate_diagonal(name: str, params: Sequence[float] = ()) -> Optional[Matrix]:
    """Diagonal of a gate's matrix, or ``None`` for non-diagonal gates."""
    key = name.lower()
    if key not in DIAGONAL_GATES:
        return None
    return np.ascontiguousarray(np.diagonal(gate_matrix(key, params)))


def _batch_rz_diagonal(theta: np.ndarray) -> np.ndarray:
    phase = np.exp(-0.5j * theta)
    return np.stack([phase, phase.conj()], axis=1)


def _batch_p_diagonal(lam: np.ndarray) -> np.ndarray:
    ones = np.ones_like(lam, dtype=complex)
    return np.stack([ones, np.exp(1j * lam)], axis=1)


def _batch_cp_diagonal(lam: np.ndarray) -> np.ndarray:
    ones = np.ones_like(lam, dtype=complex)
    return np.stack([ones, ones, ones, np.exp(1j * lam)], axis=1)


def _batch_crz_diagonal(theta: np.ndarray) -> np.ndarray:
    ones = np.ones_like(theta, dtype=complex)
    phase = np.exp(-0.5j * theta)
    return np.stack([ones, ones, phase, phase.conj()], axis=1)


def _batch_rzz_diagonal(theta: np.ndarray) -> np.ndarray:
    phase = np.exp(-0.5j * theta)
    return np.stack([phase, phase.conj(), phase.conj(), phase], axis=1)


_BATCH_DIAGONALS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "rz": _batch_rz_diagonal,
    "p": _batch_p_diagonal,
    "cp": _batch_cp_diagonal,
    "crz": _batch_crz_diagonal,
    "rzz": _batch_rzz_diagonal,
}


def _batch_rx_matrix(theta: np.ndarray) -> np.ndarray:
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    out = np.empty((theta.size, 2, 2), dtype=complex)
    out[:, 0, 0] = c
    out[:, 0, 1] = -1j * s
    out[:, 1, 0] = -1j * s
    out[:, 1, 1] = c
    return out


def _batch_ry_matrix(theta: np.ndarray) -> np.ndarray:
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    out = np.empty((theta.size, 2, 2), dtype=complex)
    out[:, 0, 0] = c
    out[:, 0, 1] = -s
    out[:, 1, 0] = s
    out[:, 1, 1] = c
    return out


_BATCH_MATRICES: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "rx": _batch_rx_matrix,
    "ry": _batch_ry_matrix,
}


def batch_gate_diagonal(name: str,
                        params: np.ndarray) -> Optional[np.ndarray]:
    """Stacked diagonals ``(batch, 2**k)`` for a one-parameter diagonal
    gate evaluated at many parameter values, or ``None`` if the gate is
    not diagonal. ``params`` has shape ``(batch,)`` or ``(batch, 1)``.
    """
    key = name.lower()
    builder = _BATCH_DIAGONALS.get(key)
    if builder is not None:
        return builder(np.asarray(params, dtype=float).reshape(-1))
    if key in DIAGONAL_GATES:  # fixed diagonal gate: broadcast one copy
        rows = np.asarray(params).shape[0]
        return np.broadcast_to(gate_diagonal(key), (rows, 2 ** GATE_ARITY[key]))
    return None


def batch_gate_matrix(name: str, params: np.ndarray) -> np.ndarray:
    """Stacked unitaries ``(batch, 2**k, 2**k)`` for one gate at many
    parameter values. Vectorized for the common rotation gates; other
    gates fall back to stacking cached per-value matrices.
    """
    key = name.lower()
    params = np.atleast_2d(np.asarray(params, dtype=float))
    builder = _BATCH_MATRICES.get(key)
    if builder is not None:
        return builder(params[:, 0])
    return np.stack([
        _cached_gate_matrix(key, tuple(row)) for row in params
    ])


def is_unitary(matrix: Matrix, atol: float = 1e-10) -> bool:
    """Check whether a matrix is unitary within tolerance."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, identity, atol=atol))
