"""Random circuit and state generators.

Used by the simulator-scaling benchmark (E1), the barren-plateau
experiment (E4) and the property-based tests, which need unbiased
circuit samples to probe invariants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .circuit import Circuit

_SINGLE_QUBIT_POOL = ("rx", "ry", "rz")
_ENTANGLER_POOL = ("cx", "cz")


def random_layered_circuit(num_qubits: int, depth: int,
                           seed: Optional[int] = None,
                           entangler: str = "cx") -> Circuit:
    """A brick-wall circuit: random rotations then nearest-neighbour
    entanglers, repeated ``depth`` times. All parameters are bound."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if entangler not in _ENTANGLER_POOL:
        raise ValueError(f"entangler must be one of {_ENTANGLER_POOL}")
    rng = np.random.default_rng(seed)
    qc = Circuit(num_qubits)
    for _ in range(depth):
        for q in range(num_qubits):
            gate = _SINGLE_QUBIT_POOL[rng.integers(len(_SINGLE_QUBIT_POOL))]
            qc.append(gate, [q], [float(rng.uniform(0, 2 * np.pi))])
        for q in range(num_qubits - 1):
            qc.append(entangler, [q, q + 1])
    return qc


def random_statevector(num_qubits: int,
                       seed: Optional[int] = None) -> np.ndarray:
    """Haar-random pure state via a normalized complex Gaussian vector."""
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_product_circuit(num_qubits: int,
                           seed: Optional[int] = None) -> Circuit:
    """Independent random single-qubit rotations only (no entanglement)."""
    rng = np.random.default_rng(seed)
    qc = Circuit(num_qubits)
    for q in range(num_qubits):
        qc.ry(float(rng.uniform(0, np.pi)), q)
        qc.rz(float(rng.uniform(0, 2 * np.pi)), q)
    return qc
