"""Quantum Fourier transform circuit builders.

The QFT is the workhorse behind phase estimation (and thus behind the
exponential-speedup linear-algebra routines the tutorial surveys).
Built from H and controlled-phase gates in the textbook pattern, with
the optional final swap network that reverses qubit order.
"""

from __future__ import annotations

import math

import numpy as np

from .circuit import Circuit


def qft_circuit(num_qubits: int, swap: bool = True) -> Circuit:
    """The quantum Fourier transform on ``num_qubits`` qubits.

    With ``swap=True`` the output matches the standard definition
    ``|j> -> (1/sqrt(N)) sum_k exp(2 pi i j k / N) |k>`` under this
    library's big-endian convention.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    qc = Circuit(num_qubits)
    for target in range(num_qubits):
        qc.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits),
                                         start=2):
            qc.cp(2.0 * math.pi / (2 ** offset), control, target)
    if swap:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def inverse_qft_circuit(num_qubits: int, swap: bool = True) -> Circuit:
    """The adjoint QFT (used to read out phases in QPE)."""
    return qft_circuit(num_qubits, swap=swap).inverse()


def qft_matrix(num_qubits: int) -> np.ndarray:
    """Dense reference DFT matrix ``F[j, k] = w^{jk} / sqrt(N)``."""
    dim = 2 ** num_qubits
    omega = np.exp(2j * math.pi / dim)
    j, k = np.meshgrid(np.arange(dim), np.arange(dim), indexing="ij")
    return omega ** (j * k) / math.sqrt(dim)
