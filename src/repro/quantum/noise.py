"""Quantum noise channels in Kraus form.

A channel is a list of Kraus operators ``{K_i}`` with
``sum K_i^dagger K_i = I``; it acts on a density matrix as
``rho -> sum K_i rho K_i^dagger``. A :class:`NoiseModel` attaches
channels after gates so the density-matrix simulator can model NISQ-era
hardware (experiment E6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .gates import I2, PAULI_X, PAULI_Y, PAULI_Z

KrausOps = List[np.ndarray]


def depolarizing_channel(p: float) -> KrausOps:
    """Single-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` the state is replaced by the maximally mixed
    state, realized as uniform X/Y/Z errors.
    """
    _check_probability(p)
    return [
        math.sqrt(1.0 - 3.0 * p / 4.0) * I2,
        math.sqrt(p / 4.0) * PAULI_X,
        math.sqrt(p / 4.0) * PAULI_Y,
        math.sqrt(p / 4.0) * PAULI_Z,
    ]


def bit_flip_channel(p: float) -> KrausOps:
    """Flip the qubit (X error) with probability ``p``."""
    _check_probability(p)
    return [math.sqrt(1.0 - p) * I2, math.sqrt(p) * PAULI_X]


def phase_flip_channel(p: float) -> KrausOps:
    """Apply a Z error with probability ``p``."""
    _check_probability(p)
    return [math.sqrt(1.0 - p) * I2, math.sqrt(p) * PAULI_Z]


def amplitude_damping_channel(gamma: float) -> KrausOps:
    """Energy relaxation (T1 decay) with damping rate ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_channel(gamma: float) -> KrausOps:
    """Pure dephasing (T2) with rate ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(gamma)]], dtype=complex)
    return [k0, k1]


def two_qubit_depolarizing_channel(p: float) -> KrausOps:
    """Two-qubit depolarizing channel (uniform over 15 Pauli errors)."""
    _check_probability(p)
    paulis = [I2, PAULI_X, PAULI_Y, PAULI_Z]
    ops: KrausOps = []
    for i, a in enumerate(paulis):
        for j, b in enumerate(paulis):
            weight = 1.0 - 15.0 * p / 16.0 if i == j == 0 else p / 16.0
            ops.append(math.sqrt(weight) * np.kron(a, b))
    return ops


def is_valid_channel(kraus: Sequence[np.ndarray], atol: float = 1e-10) -> bool:
    """Check the completeness relation ``sum K^dag K = I``."""
    if not kraus:
        return False
    dim = kraus[0].shape[0]
    total = np.zeros((dim, dim), dtype=complex)
    for k in kraus:
        if k.shape != (dim, dim):
            return False
        total += k.conj().T @ k
    return bool(np.allclose(total, np.eye(dim), atol=atol))


@dataclass
class NoiseModel:
    """Gate-attached noise: channels applied after each matching gate.

    Attributes
    ----------
    single_qubit:
        Kraus channel applied to the target qubit(s) after every
        single-qubit gate. ``None`` disables it.
    two_qubit:
        Two-qubit Kraus channel applied after every two-qubit gate.
    readout_error:
        Probability of classically flipping each measured bit.
    """

    single_qubit: Optional[KrausOps] = None
    two_qubit: Optional[KrausOps] = None
    readout_error: float = 0.0

    def __post_init__(self):
        if self.single_qubit is not None and not is_valid_channel(self.single_qubit):
            raise ValueError("single_qubit is not a valid Kraus channel")
        if self.two_qubit is not None and not is_valid_channel(self.two_qubit):
            raise ValueError("two_qubit is not a valid Kraus channel")
        _check_probability(self.readout_error)

    @classmethod
    def depolarizing(cls, p1: float, p2: Optional[float] = None,
                     readout_error: float = 0.0) -> "NoiseModel":
        """Uniform depolarizing model; ``p2`` defaults to ``10 * p1``
        capped at 1, mirroring typical hardware where two-qubit gates
        are an order of magnitude noisier."""
        if p2 is None:
            p2 = min(10.0 * p1, 1.0)
        return cls(
            single_qubit=depolarizing_channel(p1) if p1 > 0 else None,
            two_qubit=two_qubit_depolarizing_channel(p2) if p2 > 0 else None,
            readout_error=readout_error,
        )

    def channel_for(self, num_gate_qubits: int) -> Optional[KrausOps]:
        """Channel to apply after a gate of the given arity."""
        if num_gate_qubits == 1:
            return self.single_qubit
        if num_gate_qubits == 2:
            return self.two_qubit
        return None  # 3-qubit gates left noiseless (decompose if needed)


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
