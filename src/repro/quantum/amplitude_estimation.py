"""Canonical quantum amplitude estimation (Brassard et al.).

Estimates the probability ``a = |<good|psi>|^2`` of a marked subspace
to additive error ``O(1 / 2**m)`` using ``m`` phase-estimation qubits
over the Grover operator ``Q = -S_psi S_good`` — a *quadratic*
improvement over the ``O(1 / eps^2)`` shots classical sampling needs.
This is the machinery behind quantum speedups for aggregate/count
queries and Monte Carlo estimation that the tutorial points to.

Implemented at matrix granularity: the Grover operator is constructed
as a dense unitary from the state-preparation circuit and the marked
set, then fed to textbook QPE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from .circuit import Circuit
from .phase_estimation import phase_estimation
from .statevector import StatevectorSimulator


@dataclass
class AmplitudeEstimationResult:
    """Outcome of a QAE run."""

    estimate: float          # estimated amplitude a
    true_amplitude: float    # exact a (available in simulation)
    num_eval_qubits: int
    grover_calls: int        # 2**m - 1 controlled applications

    @property
    def error(self) -> float:
        return abs(self.estimate - self.true_amplitude)


def amplitude_estimation(preparation: Circuit, good_states: Iterable[int],
                         num_eval_qubits: int = 5
                         ) -> AmplitudeEstimationResult:
    """Estimate the probability mass of ``good_states`` under the
    state prepared by ``preparation``.

    Parameters
    ----------
    preparation:
        A fully bound circuit preparing ``|psi> = A|0>``.
    good_states:
        Computational basis indices forming the 'good' subspace.
    num_eval_qubits:
        Phase-estimation resolution m; the grid has ``2**m`` points
        and the additive error is ~``pi / 2**m``.
    """
    if num_eval_qubits < 1:
        raise ValueError("num_eval_qubits must be positive")
    sim = StatevectorSimulator()
    psi = sim.run(preparation)
    dim = psi.size
    good = sorted(set(int(g) for g in good_states))
    if not good:
        raise ValueError("good_states must be non-empty")
    if good[0] < 0 or good[-1] >= dim:
        raise ValueError("good state index out of range")

    projector_diag = np.zeros(dim)
    projector_diag[good] = 1.0
    true_amplitude = float((np.abs(psi) ** 2 * projector_diag).sum())

    # Grover operator Q = A S_0 A^dag S_good, with S_good the phase
    # flip on good states and S_0 the phase flip about |0...0>.
    s_good = np.diag(1.0 - 2.0 * projector_diag).astype(complex)
    s_zero = np.eye(dim, dtype=complex)
    s_zero[0, 0] = -1.0
    a_matrix = _circuit_unitary(preparation)
    grover = -(a_matrix @ s_zero @ a_matrix.conj().T @ s_good)

    # Q rotates the (good, bad) plane by 2 theta with a = sin^2(theta);
    # QPE on Q with input |psi> reads phase theta / pi (or 1 - it).
    result = phase_estimation(grover, psi, num_bits=num_eval_qubits)
    estimate = math.sin(math.pi * result.estimated_phase) ** 2
    return AmplitudeEstimationResult(
        estimate=float(estimate),
        true_amplitude=true_amplitude,
        num_eval_qubits=num_eval_qubits,
        grover_calls=2 ** num_eval_qubits - 1,
    )


def classical_sample_estimate(preparation: Circuit,
                              good_states: Iterable[int], shots: int,
                              seed: Optional[int] = None) -> float:
    """Monte Carlo baseline: estimate the same amplitude by sampling.

    Standard error ~ ``sqrt(a (1 - a) / shots)`` — the 1/eps^2 cost
    QAE quadratically improves on.
    """
    if shots < 1:
        raise ValueError("shots must be positive")
    sim = StatevectorSimulator(seed=seed)
    counts = sim.sample_counts(preparation, shots)
    good = {int(g) for g in good_states}
    hits = sum(
        count for bits, count in counts.items()
        if int(bits, 2) in good
    )
    return hits / shots


def _circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Dense unitary of a bound circuit (testing-scale registers)."""
    dim = 2 ** circuit.num_qubits
    sim = StatevectorSimulator()
    columns = []
    for basis in range(dim):
        start = np.zeros(dim, dtype=complex)
        start[basis] = 1.0
        columns.append(sim.run(circuit, initial_state=start))
    return np.column_stack(columns)


def quantum_counting(num_qubits: int, marked: Iterable[int],
                     num_eval_qubits: int = 6) -> float:
    """Estimate the *number* of marked basis states — the quantum
    COUNT(*) primitive.

    Runs amplitude estimation with the uniform superposition as the
    preparation circuit, then rescales the estimated amplitude
    ``a = M / N`` back to a count. Resolution follows the phase grid:
    the returned count is exact once ``2**num_eval_qubits`` resolves
    ``asin(sqrt(M / N))``.
    """
    marked = sorted(set(int(m) for m in marked))
    if not marked:
        raise ValueError("marked must be non-empty")
    preparation = Circuit(num_qubits)
    for q in range(num_qubits):
        preparation.h(q)
    result = amplitude_estimation(preparation, marked,
                                  num_eval_qubits=num_eval_qubits)
    return result.estimate * 2 ** num_qubits
