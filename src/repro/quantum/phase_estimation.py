"""Quantum phase estimation.

Estimates the eigenphase ``phi`` of a unitary ``U`` with eigenstate
``|u>`` (``U|u> = exp(2 pi i phi)|u>``) to ``t`` bits — the primitive
behind HHL-style linear-algebra speedups surveyed in the tutorial.

The implementation applies controlled powers of the (numpy) unitary
directly through the statevector simulator and reads the phase out
with an inverse QFT on the counting register.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .qft import inverse_qft_circuit
from .statevector import apply_matrix


@dataclass
class PhaseEstimationResult:
    """Outcome of a QPE run."""

    estimated_phase: float
    distribution: np.ndarray  # probability per counting value
    num_bits: int

    def counts(self, shots: int,
               seed: Optional[int] = None) -> Dict[str, int]:
        """Sample counting-register readouts."""
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(self.distribution.size, size=shots,
                              p=self.distribution
                              / self.distribution.sum())
        out: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(outcome, f"0{self.num_bits}b")
            out[key] = out.get(key, 0) + 1
        return out


def phase_estimation(unitary: np.ndarray, eigenstate: np.ndarray,
                     num_bits: int) -> PhaseEstimationResult:
    """Run textbook QPE with ``num_bits`` counting qubits.

    Parameters
    ----------
    unitary:
        The target unitary as a dense matrix on ``m`` qubits.
    eigenstate:
        The (approximate) eigenstate loaded into the system register.
    num_bits:
        Counting-register width; resolution is ``2**-num_bits``.
    """
    unitary = np.asarray(unitary, dtype=complex)
    eigenstate = np.asarray(eigenstate, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise ValueError("unitary must be square")
    system_qubits = int(round(math.log2(unitary.shape[0])))
    if 2 ** system_qubits != unitary.shape[0]:
        raise ValueError("unitary dimension must be a power of two")
    if eigenstate.shape != (unitary.shape[0],):
        raise ValueError("eigenstate dimension mismatch")
    if num_bits < 1:
        raise ValueError("num_bits must be positive")

    total_qubits = num_bits + system_qubits
    # Counting register (qubits 0..t-1) in uniform superposition,
    # system register holds the eigenstate.
    counting = np.full(2 ** num_bits, 1.0 / math.sqrt(2 ** num_bits),
                       dtype=complex)
    state = np.kron(counting, eigenstate / np.linalg.norm(eigenstate))

    # Controlled-U^(2^k) with counting qubit k as control. Qubit k
    # weights 2^(t-1-k); the standard assignment gives qubit k the
    # power 2^(t-1-k).
    system = tuple(range(num_bits, total_qubits))
    for k in range(num_bits):
        power = 2 ** (num_bits - 1 - k)
        u_power = np.linalg.matrix_power(unitary, power)
        controlled = _controlled_unitary(u_power)
        state = apply_matrix(state, controlled, (k, *system),
                             total_qubits)

    # Inverse QFT on the counting register.
    iqft = inverse_qft_circuit(num_bits)
    for inst in iqft.instructions:
        state = apply_matrix(state, inst.matrix(), inst.qubits,
                             total_qubits)

    # Marginal over the counting register (qubits 0..t-1 are the most
    # significant bits of the index).
    probabilities = np.abs(state) ** 2
    per_count = probabilities.reshape(2 ** num_bits, -1).sum(axis=1)
    best = int(np.argmax(per_count))
    return PhaseEstimationResult(
        estimated_phase=best / 2 ** num_bits,
        distribution=per_count,
        num_bits=num_bits,
    )


def _controlled_unitary(unitary: np.ndarray) -> np.ndarray:
    dim = unitary.shape[0]
    out = np.eye(2 * dim, dtype=complex)
    out[dim:, dim:] = unitary
    return out


def phase_from_eigenvalue(eigenvalue: complex) -> float:
    """The phase ``phi in [0, 1)`` with ``eigenvalue = e^{2 pi i phi}``."""
    phase = np.angle(eigenvalue) / (2 * math.pi)
    return float(phase % 1.0)
