"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`Instruction` objects.
Gate parameters may be concrete floats or symbolic :class:`Parameter`
placeholders (optionally scaled/shifted via :class:`ParameterExpression`),
which is what lets :mod:`repro.qml` build one circuit template and bind
data points and trainable weights into it repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

import numpy as np

from .gates import GATE_ARITY, GATE_NUM_PARAMS, gate_matrix


class Parameter:
    """A named symbolic circuit parameter.

    Parameters are compared by identity, so two parameters that happen to
    share a name are still distinct knobs. Arithmetic with floats yields
    :class:`ParameterExpression` objects (affine expressions only, which
    is all the parameter-shift rule needs).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    def __mul__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, scale=float(other))

    __rmul__ = __mul__

    def __add__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, offset=float(other))

    __radd__ = __add__

    def __sub__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(self, offset=-float(other))

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, scale=-1.0)


@dataclass(frozen=True)
class ParameterExpression:
    """An affine expression ``scale * parameter + offset``."""

    parameter: Parameter
    scale: float = 1.0
    offset: float = 0.0

    def bind(self, value: float) -> float:
        """Evaluate the expression at a concrete parameter value."""
        return self.scale * value + self.offset

    def __mul__(self, other: float) -> "ParameterExpression":
        other = float(other)
        return ParameterExpression(
            self.parameter, scale=self.scale * other, offset=self.offset * other
        )

    __rmul__ = __mul__

    def __neg__(self) -> "ParameterExpression":
        return self * -1.0

    def __add__(self, other: float) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter, scale=self.scale, offset=self.offset + float(other)
        )

    __radd__ = __add__


ParamValue = Union[float, Parameter, ParameterExpression]


@dataclass(frozen=True)
class Instruction:
    """A single gate application: name, target qubits, parameters."""

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()

    @property
    def is_parameterized(self) -> bool:
        """True if any parameter is still symbolic."""
        return any(
            isinstance(p, (Parameter, ParameterExpression)) for p in self.params
        )

    def parameters(self) -> Iterator[Parameter]:
        """Yield the distinct symbolic parameters in this instruction."""
        for p in self.params:
            if isinstance(p, Parameter):
                yield p
            elif isinstance(p, ParameterExpression):
                yield p.parameter

    def matrix(self) -> np.ndarray:
        """Unitary matrix of this instruction; requires bound parameters."""
        if self.is_parameterized:
            raise ValueError(
                f"instruction {self.name} has unbound parameters; bind first"
            )
        return gate_matrix(self.name, [float(p) for p in self.params])


class Circuit:
    """An ordered sequence of gate instructions on ``num_qubits`` qubits.

    The builder methods (``h``, ``rx``, ``cx``, ...) append an
    instruction and return ``self`` so construction chains fluently::

        qc = Circuit(2).h(0).cx(0, 1)
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Generic appends
    # ------------------------------------------------------------------
    def append(self, name: str, qubits: Sequence[int],
               params: Sequence[ParamValue] = ()) -> "Circuit":
        """Append a gate by name, validating arity and qubit indices."""
        key = name.lower()
        arity = GATE_ARITY.get(key)
        if arity is None:
            raise KeyError(f"unknown gate {name!r}")
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != arity:
            raise ValueError(
                f"gate {name!r} acts on {arity} qubit(s), got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in {qubits}")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        expected = GATE_NUM_PARAMS[key]
        if len(params) != expected:
            raise ValueError(
                f"gate {name!r} takes {expected} parameter(s), got {len(params)}"
            )
        normalized: List[ParamValue] = []
        for p in params:
            if isinstance(p, (Parameter, ParameterExpression)):
                normalized.append(p)
            else:
                normalized.append(float(p))
        self.instructions.append(Instruction(key, qubits, tuple(normalized)))
        return self

    # ------------------------------------------------------------------
    # Named builders
    # ------------------------------------------------------------------
    def i(self, q: int) -> "Circuit":
        return self.append("i", [q])

    def x(self, q: int) -> "Circuit":
        return self.append("x", [q])

    def y(self, q: int) -> "Circuit":
        return self.append("y", [q])

    def z(self, q: int) -> "Circuit":
        return self.append("z", [q])

    def h(self, q: int) -> "Circuit":
        return self.append("h", [q])

    def s(self, q: int) -> "Circuit":
        return self.append("s", [q])

    def sdg(self, q: int) -> "Circuit":
        return self.append("sdg", [q])

    def t(self, q: int) -> "Circuit":
        return self.append("t", [q])

    def tdg(self, q: int) -> "Circuit":
        return self.append("tdg", [q])

    def sx(self, q: int) -> "Circuit":
        return self.append("sx", [q])

    def rx(self, theta: ParamValue, q: int) -> "Circuit":
        return self.append("rx", [q], [theta])

    def ry(self, theta: ParamValue, q: int) -> "Circuit":
        return self.append("ry", [q], [theta])

    def rz(self, theta: ParamValue, q: int) -> "Circuit":
        return self.append("rz", [q], [theta])

    def p(self, lam: ParamValue, q: int) -> "Circuit":
        return self.append("p", [q], [lam])

    def u3(self, theta: ParamValue, phi: ParamValue, lam: ParamValue,
           q: int) -> "Circuit":
        return self.append("u3", [q], [theta, phi, lam])

    def cx(self, control: int, target: int) -> "Circuit":
        return self.append("cx", [control, target])

    def cz(self, control: int, target: int) -> "Circuit":
        return self.append("cz", [control, target])

    def swap(self, a: int, b: int) -> "Circuit":
        return self.append("swap", [a, b])

    def iswap(self, a: int, b: int) -> "Circuit":
        return self.append("iswap", [a, b])

    def crx(self, theta: ParamValue, control: int, target: int) -> "Circuit":
        return self.append("crx", [control, target], [theta])

    def cry(self, theta: ParamValue, control: int, target: int) -> "Circuit":
        return self.append("cry", [control, target], [theta])

    def crz(self, theta: ParamValue, control: int, target: int) -> "Circuit":
        return self.append("crz", [control, target], [theta])

    def cp(self, lam: ParamValue, control: int, target: int) -> "Circuit":
        return self.append("cp", [control, target], [lam])

    def rxx(self, theta: ParamValue, a: int, b: int) -> "Circuit":
        return self.append("rxx", [a, b], [theta])

    def ryy(self, theta: ParamValue, a: int, b: int) -> "Circuit":
        return self.append("ryy", [a, b], [theta])

    def rzz(self, theta: ParamValue, a: int, b: int) -> "Circuit":
        return self.append("rzz", [a, b], [theta])

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.append("ccx", [c1, c2, target])

    def cswap(self, control: int, a: int, b: int) -> "Circuit":
        return self.append("cswap", [control, a, b])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def parameters(self) -> List[Parameter]:
        """Distinct symbolic parameters in first-appearance order."""
        seen: Dict[int, Parameter] = {}
        for inst in self.instructions:
            for p in inst.parameters():
                seen.setdefault(id(p), p)
        return list(seen.values())

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def depth(self) -> int:
        """Circuit depth: longest chain of instructions per qubit frontier."""
        frontier = [0] * self.num_qubits
        for inst in self.instructions:
            level = 1 + max(frontier[q] for q in inst.qubits)
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self) -> "Circuit":
        out = Circuit(self.num_qubits)
        out.instructions = list(self.instructions)
        return out

    def bind(self, mapping: Mapping[Parameter, float]) -> "Circuit":
        """Return a copy with the given parameters substituted.

        Parameters absent from ``mapping`` stay symbolic, so partial
        binding (data first, weights later) is supported.
        """
        out = Circuit(self.num_qubits)
        for inst in self.instructions:
            new_params: List[ParamValue] = []
            for p in inst.params:
                if isinstance(p, Parameter) and p in mapping:
                    new_params.append(float(mapping[p]))
                elif (isinstance(p, ParameterExpression)
                      and p.parameter in mapping):
                    new_params.append(p.bind(float(mapping[p.parameter])))
                else:
                    new_params.append(p)
            out.instructions.append(
                Instruction(inst.name, inst.qubits, tuple(new_params))
            )
        return out

    def bind_values(self, values: Sequence[float]) -> "Circuit":
        """Bind all parameters positionally, in first-appearance order."""
        params = self.parameters
        if len(values) != len(params):
            raise ValueError(
                f"circuit has {len(params)} parameters, got {len(values)} values"
            )
        return self.bind(dict(zip(params, values)))

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self.num_qubits:
            raise ValueError(
                "composed circuit acts on more qubits than the base circuit"
            )
        out = self.copy()
        out.instructions.extend(other.instructions)
        return out

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit.

        All instructions must be bound; symbolic parameters are negated
        only through the affine machinery for shift-rule gates, so for
        simplicity (and because every caller inverts bound encodings) we
        require concrete parameters except for shift-rule gates, whose
        inverse is the gate at the negated parameter.
        """
        out = Circuit(self.num_qubits)
        for inst in reversed(self.instructions):
            out.instructions.append(_invert_instruction(inst))
        return out

    def __repr__(self) -> str:
        return (
            f"Circuit(num_qubits={self.num_qubits}, "
            f"gates={len(self.instructions)}, "
            f"params={self.num_parameters})"
        )

    def draw(self) -> str:
        """A minimal text rendering: one line per instruction."""
        lines = [f"Circuit on {self.num_qubits} qubit(s):"]
        for inst in self.instructions:
            args = ", ".join(_param_repr(p) for p in inst.params)
            suffix = f"({args})" if args else ""
            lines.append(f"  {inst.name}{suffix} q{list(inst.qubits)}")
        return "\n".join(lines)


_SELF_INVERSE = frozenset(
    {"i", "x", "y", "z", "h", "cx", "cz", "swap", "ccx", "cswap"}
)
_NEGATE_PARAM = frozenset(
    {"rx", "ry", "rz", "p", "crx", "cry", "crz", "cp", "rxx", "ryy", "rzz"}
)
_INVERSE_NAME = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}


def _invert_instruction(inst: Instruction) -> Instruction:
    if inst.name in _SELF_INVERSE:
        return inst
    if inst.name in _INVERSE_NAME:
        return Instruction(_INVERSE_NAME[inst.name], inst.qubits)
    if inst.name in _NEGATE_PARAM:
        (theta,) = inst.params
        if isinstance(theta, Parameter):
            negated: ParamValue = -theta
        elif isinstance(theta, ParameterExpression):
            negated = -theta
        else:
            negated = -float(theta)
        return Instruction(inst.name, inst.qubits, (negated,))
    if inst.name == "u3":
        theta, phi, lam = inst.params
        if inst.is_parameterized:
            raise ValueError("cannot invert a symbolic u3 gate")
        return Instruction(
            "u3", inst.qubits, (-float(theta), -float(lam), -float(phi))
        )
    if inst.name == "sx":
        # sx^-1 = sx . sx . sx is wasteful; use u3 equivalent instead.
        raise ValueError("sx inversion is not supported; use rx(pi/2)")
    if inst.name == "iswap":
        raise ValueError("iswap inversion is not supported")
    raise ValueError(f"do not know how to invert gate {inst.name!r}")


def _param_repr(p: ParamValue) -> str:
    if isinstance(p, Parameter):
        return p.name
    if isinstance(p, ParameterExpression):
        return f"{p.scale:g}*{p.parameter.name}+{p.offset:g}"
    return f"{p:.4g}"


def parameter_vector(prefix: str, length: int) -> List[Parameter]:
    """Create a list of parameters named ``prefix[0] .. prefix[length-1]``."""
    return [Parameter(f"{prefix}[{i}]") for i in range(length)]
