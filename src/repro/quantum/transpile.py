"""Circuit optimization passes.

Lightweight peephole transpilation for bound circuits: merging
adjacent rotations on the same qubit, cancelling adjacent self-inverse
gates, and dropping identity operations. On NISQ hardware every gate
costs fidelity, so shorter equivalent circuits are strictly better —
this is the compiler layer between the ansatz builders and the
simulators.
"""

from __future__ import annotations

import math
from typing import List

from .circuit import Circuit, Instruction

_TWO_PI = 2.0 * math.pi

_MERGEABLE = frozenset({"rx", "ry", "rz", "p", "rzz", "rxx", "ryy",
                        "crx", "cry", "crz", "cp"})
_SELF_INVERSE = frozenset({"x", "y", "z", "h", "cx", "cz", "swap",
                           "ccx", "cswap"})
#: rotations with period 2*pi whose zero-angle form is the identity
_PERIODIC = frozenset({"rx", "ry", "rz", "rzz", "rxx", "ryy",
                       "crx", "cry", "crz"})


def remove_identities(circuit: Circuit, atol: float = 1e-12) -> Circuit:
    """Drop explicit identity gates and zero-angle rotations."""
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        if inst.name == "i":
            continue
        if (inst.name in _MERGEABLE and not inst.is_parameterized
                and abs(_normalized_angle(inst)) <= atol):
            continue
        out.instructions.append(inst)
    return out


def merge_rotations(circuit: Circuit, atol: float = 1e-12) -> Circuit:
    """Fuse runs of the same rotation gate on the same qubits.

    Consecutive ``rx(a) rx(b)`` on one qubit become ``rx(a + b)``
    (dropped entirely if the sum is a multiple of 2*pi). Only bound
    instructions participate; symbolic ones act as barriers.
    """
    out = Circuit(circuit.num_qubits)
    for inst in circuit.instructions:
        previous = out.instructions[-1] if out.instructions else None
        if (previous is not None
                and inst.name in _MERGEABLE
                and previous.name == inst.name
                and previous.qubits == inst.qubits
                and not inst.is_parameterized
                and not previous.is_parameterized):
            angle = float(previous.params[0]) + float(inst.params[0])
            out.instructions.pop()
            if inst.name in _PERIODIC:
                angle = math.remainder(angle, _TWO_PI)
            if abs(angle) > atol:
                out.instructions.append(
                    Instruction(inst.name, inst.qubits, (angle,))
                )
            continue
        out.instructions.append(inst)
    return out


def cancel_adjacent_inverses(circuit: Circuit) -> Circuit:
    """Remove adjacent pairs of self-inverse gates on identical qubits.

    Scans with a stack so that cancelling one pair can expose another
    (``h x x h`` collapses fully). Soundness: a pop only happens when
    everything between the pair in program order has itself been
    popped, i.e. composes to the identity, so removing the pair
    preserves the circuit's unitary.
    """
    stack: List[Instruction] = []
    for inst in circuit.instructions:
        if (stack
                and inst.name in _SELF_INVERSE
                and stack[-1].name == inst.name
                and stack[-1].qubits == inst.qubits):
            stack.pop()
            continue
        stack.append(inst)
    out = Circuit(circuit.num_qubits)
    out.instructions = stack
    return out


def optimize_circuit(circuit: Circuit, passes: int = 3) -> Circuit:
    """Run the pass pipeline to a fixed point (bounded by ``passes``)."""
    if passes < 1:
        raise ValueError("passes must be positive")
    current = circuit
    for _ in range(passes):
        before = len(current)
        current = remove_identities(current)
        current = merge_rotations(current)
        current = cancel_adjacent_inverses(current)
        if len(current) == before:
            break
    return current


def _normalized_angle(inst: Instruction) -> float:
    angle = float(inst.params[0])
    if inst.name in _PERIODIC:
        return math.remainder(angle, _TWO_PI)
    return angle
