"""Density-matrix simulator with optional gate noise.

The density matrix of an ``n``-qubit system is stored as a
``2**n x 2**n`` complex array, reshaped to ``(2,) * 2n`` for gate and
Kraus application. Row axes ``0..n-1`` are the ket indices (qubit i =
axis i), column axes ``n..2n-1`` the bra indices, matching the
statevector simulator's big-endian convention.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from .circuit import Circuit
from .noise import NoiseModel
from .operators import PauliString, PauliSum


def zero_density(num_qubits: int) -> np.ndarray:
    """Density matrix of ``|0...0><0...0|``."""
    dim = 2 ** num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0
    return rho


def density_from_statevector(state: np.ndarray) -> np.ndarray:
    """Outer product ``|psi><psi|``."""
    psi = np.asarray(state, dtype=complex)
    return np.outer(psi, psi.conj())


def apply_unitary(rho: np.ndarray, matrix: np.ndarray,
                  qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Conjugate the density matrix by a unitary on the given qubits."""
    return _apply_one_sided(
        _apply_one_sided(rho, matrix, qubits, num_qubits, side="left"),
        matrix, qubits, num_qubits, side="right",
    )


def apply_kraus(rho: np.ndarray, kraus: Sequence[np.ndarray],
                qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Apply a Kraus channel ``rho -> sum K rho K^dag`` on given qubits."""
    out = np.zeros_like(rho)
    for k in kraus:
        term = _apply_one_sided(rho, k, qubits, num_qubits, side="left")
        term = _apply_one_sided(term, k, qubits, num_qubits, side="right")
        out += term
    return out


def _apply_one_sided(rho: np.ndarray, matrix: np.ndarray,
                     qubits: Sequence[int], num_qubits: int,
                     side: str) -> np.ndarray:
    """Multiply ``M . rho`` (left, ket axes) or ``rho . M^dag`` (right)."""
    k = len(qubits)
    tensor = rho.reshape((2,) * (2 * num_qubits))
    mat = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    if side == "left":
        axes = tuple(qubits)
        contracted = np.tensordot(
            mat, tensor, axes=(tuple(range(k, 2 * k)), axes)
        )
        result = np.moveaxis(contracted, range(k), axes)
    else:
        axes = tuple(num_qubits + q for q in qubits)
        contracted = np.tensordot(
            mat.conj(), tensor, axes=(tuple(range(k, 2 * k)), axes)
        )
        result = np.moveaxis(contracted, range(k), axes)
    dim = 2 ** num_qubits
    return np.ascontiguousarray(result).reshape(dim, dim)


class DensityMatrixSimulator:
    """Mixed-state simulator; plugs a :class:`NoiseModel` in after gates."""

    def __init__(self, noise_model: Optional[NoiseModel] = None,
                 seed: Optional[int] = None):
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit,
            initial_density: Optional[np.ndarray] = None) -> np.ndarray:
        """Execute a bound circuit, returning the final density matrix."""
        n = circuit.num_qubits
        if initial_density is None:
            rho = zero_density(n)
        else:
            rho = np.asarray(initial_density, dtype=complex).copy()
            if rho.shape != (2 ** n, 2 ** n):
                raise ValueError(f"density matrix must be {2**n}x{2**n}")
        for inst in circuit.instructions:
            rho = apply_unitary(rho, inst.matrix(), inst.qubits, n)
            if self.noise_model is not None:
                channel = self.noise_model.channel_for(len(inst.qubits))
                if channel is not None:
                    rho = apply_kraus(rho, channel, inst.qubits, n)
        return rho

    def probabilities(self, circuit: Circuit) -> np.ndarray:
        """Z-basis outcome probabilities (diagonal of the final rho),
        including classical readout error if the noise model has one."""
        rho = self.run(circuit)
        probs = np.real(np.diag(rho)).copy()
        probs[probs < 0] = 0.0
        probs /= probs.sum()
        if self.noise_model is not None and self.noise_model.readout_error > 0:
            probs = _apply_readout_error(
                probs, circuit.num_qubits, self.noise_model.readout_error
            )
        return probs

    def sample_counts(self, circuit: Circuit, shots: int) -> Dict[str, int]:
        """Sample Z-basis outcomes from the noisy distribution."""
        if shots < 1:
            raise ValueError("shots must be positive")
        probs = self.probabilities(circuit)
        n = circuit.num_qubits
        outcomes = self._rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(outcome, f"0{n}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    def expectation(self, circuit: Circuit, observable) -> float:
        """Expectation ``Tr(rho O)`` of a Pauli observable."""
        rho = self.run(circuit)
        if isinstance(observable, PauliString):
            observable = PauliSum([observable])
        value = 0.0
        for term in observable:
            value += float(np.trace(rho @ term.matrix()).real)
        return value


def _apply_readout_error(probs: np.ndarray, num_qubits: int,
                         p_flip: float) -> np.ndarray:
    """Convolve the outcome distribution with independent bit flips."""
    flip = np.array([[1.0 - p_flip, p_flip], [p_flip, 1.0 - p_flip]])
    out = probs.reshape((2,) * num_qubits)
    for axis in range(num_qubits):
        out = np.tensordot(flip, out, axes=([1], [axis]))
        out = np.moveaxis(out, 0, axis)
    return out.reshape(-1)


def purity(rho: np.ndarray) -> float:
    """``Tr(rho^2)``; 1 for pure states, ``1/d`` for maximally mixed."""
    return float(np.trace(rho @ rho).real)


def von_neumann_entropy(rho: np.ndarray, base: float = 2.0) -> float:
    """Entropy ``-Tr(rho log rho)`` computed from eigenvalues."""
    eigenvalues = np.linalg.eigvalsh(rho)
    eigenvalues = eigenvalues[eigenvalues > 1e-12]
    return float(-(eigenvalues * np.log(eigenvalues)).sum() / math.log(base))
