"""NISQ error mitigation: zero-noise extrapolation and readout
correction.

Two standard techniques for squeezing signal out of noisy hardware,
both exercised against this library's own noise models:

* **Zero-noise extrapolation (ZNE)** — amplify the gate noise by known
  factors through *global unitary folding* (``C -> C C^dag C`` and
  partial folds), measure the observable at each amplification, and
  Richardson-extrapolate back to the zero-noise limit.
* **Readout mitigation** — calibrate the classical bit-flip confusion
  matrix from basis-state preparations and invert it on measured
  outcome distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .circuit import Circuit
from .density import DensityMatrixSimulator
from .noise import NoiseModel


# ----------------------------------------------------------------------
# Zero-noise extrapolation
# ----------------------------------------------------------------------
def fold_circuit(circuit: Circuit, scale_factor: float) -> Circuit:
    """Amplify noise by unitary folding.

    ``scale_factor`` must be >= 1. Integer odd factors ``2k + 1`` fold
    the whole circuit k times (``C (C^dag C)^k``); other factors fold
    a proportional prefix of the gate list (partial folding), giving a
    circuit whose *logical* unitary is unchanged but whose gate count
    — and therefore gate-attached noise — scales by ~scale_factor.
    """
    if scale_factor < 1.0:
        raise ValueError("scale_factor must be >= 1")
    if circuit.num_parameters:
        raise ValueError("bind parameters before folding")
    num_gates = len(circuit)
    out = circuit.copy()
    if num_gates == 0:
        return out
    whole_folds = int((scale_factor - 1.0) // 2.0)
    for _ in range(whole_folds):
        out = out.compose(circuit.inverse()).compose(circuit)
    achieved = 1.0 + 2.0 * whole_folds
    remaining = scale_factor - achieved
    if remaining > 1e-9:
        # Partial fold: append (suffix^dag suffix) for a suffix whose
        # length matches the leftover scale.
        partial_gates = max(1, int(round(remaining * num_gates / 2.0)))
        suffix = Circuit(circuit.num_qubits)
        suffix.instructions = list(circuit.instructions[-partial_gates:])
        out = out.compose(suffix.inverse()).compose(suffix)
    return out


@dataclass
class ZNEResult:
    """Outcome of a zero-noise extrapolation."""

    mitigated_value: float
    scale_factors: List[float]
    measured_values: List[float]
    noisy_value: float  # the unmitigated (scale 1) measurement


def zero_noise_extrapolation(circuit: Circuit, observable,
                             noise_model: NoiseModel,
                             scale_factors: Sequence[float] = (1.0, 2.0,
                                                               3.0),
                             order: int = 1) -> ZNEResult:
    """Richardson-extrapolate an expectation value to zero noise.

    Runs the folded circuits on the density-matrix simulator with the
    given noise model, fits a degree-``order`` polynomial in the scale
    factor, and evaluates it at 0.
    """
    if len(scale_factors) < order + 1:
        raise ValueError("need at least order + 1 scale factors")
    if sorted(scale_factors)[0] < 1.0:
        raise ValueError("scale factors must be >= 1")
    simulator = DensityMatrixSimulator(noise_model=noise_model)
    values = [
        simulator.expectation(fold_circuit(circuit, scale), observable)
        for scale in scale_factors
    ]
    coefficients = np.polyfit(np.asarray(scale_factors, dtype=float),
                              np.asarray(values), deg=order)
    mitigated = float(np.polyval(coefficients, 0.0))
    return ZNEResult(
        mitigated_value=mitigated,
        scale_factors=list(scale_factors),
        measured_values=[float(v) for v in values],
        noisy_value=float(values[0]),
    )


# ----------------------------------------------------------------------
# Readout mitigation
# ----------------------------------------------------------------------
class ReadoutMitigator:
    """Confusion-matrix readout correction.

    Calibrates ``M[observed, prepared]`` by preparing every basis state
    under the noise model's readout error, then corrects measured
    distributions with the (pseudo)inverse, clipping and renormalizing
    to keep a valid distribution.

    Calibration is exponential in qubits; intended for small registers.
    """

    def __init__(self, num_qubits: int, noise_model: NoiseModel):
        if num_qubits < 1:
            raise ValueError("num_qubits must be positive")
        if num_qubits > 6:
            raise ValueError("readout calibration limited to 6 qubits")
        self.num_qubits = num_qubits
        self.noise_model = noise_model
        self._confusion = self._calibrate()
        self._inverse = np.linalg.pinv(self._confusion)

    @property
    def confusion_matrix(self) -> np.ndarray:
        return self._confusion.copy()

    def _calibrate(self) -> np.ndarray:
        simulator = DensityMatrixSimulator(noise_model=self.noise_model)
        dim = 2 ** self.num_qubits
        matrix = np.zeros((dim, dim))
        for prepared in range(dim):
            circuit = Circuit(self.num_qubits)
            for qubit in range(self.num_qubits):
                if (prepared >> (self.num_qubits - 1 - qubit)) & 1:
                    circuit.x(qubit)
                else:
                    circuit.i(qubit)
            matrix[:, prepared] = simulator.probabilities(circuit)
        return matrix

    def correct_probabilities(self,
                              measured: np.ndarray) -> np.ndarray:
        """Apply the inverse confusion matrix to a distribution."""
        measured = np.asarray(measured, dtype=float).reshape(-1)
        if measured.size != 2 ** self.num_qubits:
            raise ValueError("distribution size mismatch")
        corrected = self._inverse @ measured
        corrected = np.clip(corrected, 0.0, None)
        total = corrected.sum()
        if total <= 0:
            return np.full_like(measured, 1.0 / measured.size)
        return corrected / total

    def correct_counts(self, counts: Dict[str, int]) -> np.ndarray:
        """Counts dict -> corrected probability vector."""
        dim = 2 ** self.num_qubits
        measured = np.zeros(dim)
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("empty counts")
        for bits, count in counts.items():
            measured[int(bits, 2)] = count / total
        return self.correct_probabilities(measured)
