"""The swap test: estimating state overlap with one ancilla.

Measures ``|<psi|phi>|^2`` by interfering two registers through a
controlled-SWAP: P(ancilla = 0) = (1 + |<psi|phi>|^2) / 2. This is the
hardware-native way to estimate quantum-kernel entries when the
inversion test's inverse encoding is unavailable, at the cost of
doubling the register width.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .circuit import Circuit
from .statevector import StatevectorSimulator


def swap_test_circuit(state_a: Circuit, state_b: Circuit) -> Circuit:
    """Build the full swap-test circuit for two state-prep circuits.

    Layout: ancilla on qubit 0, register A on qubits ``1..m``,
    register B on qubits ``m+1..2m``. Both preparation circuits must
    act on the same register width and be fully bound.
    """
    if state_a.num_qubits != state_b.num_qubits:
        raise ValueError("both states must use the same register width")
    m = state_a.num_qubits
    total = 1 + 2 * m
    qc = Circuit(total)
    for inst in state_a.instructions:
        qc.append(inst.name, [q + 1 for q in inst.qubits],
                  list(inst.params))
    for inst in state_b.instructions:
        qc.append(inst.name, [q + 1 + m for q in inst.qubits],
                  list(inst.params))
    qc.h(0)
    for k in range(m):
        qc.cswap(0, 1 + k, 1 + m + k)
    qc.h(0)
    return qc


def swap_test_overlap(state_a: Circuit, state_b: Circuit,
                      shots: Optional[int] = None,
                      seed: Optional[int] = None) -> float:
    """Estimate ``|<a|b>|^2`` via the swap test.

    With ``shots=None`` the ancilla probability is read exactly from
    the statevector; otherwise it is estimated from samples, giving
    the shot-noise profile real kernel estimation has.
    """
    circuit = swap_test_circuit(state_a, state_b)
    sim = StatevectorSimulator(seed=seed)
    if shots is None:
        state = sim.run(circuit)
        probabilities = np.abs(state) ** 2
        p_zero = _ancilla_zero_probability(probabilities,
                                           circuit.num_qubits)
    else:
        if shots < 1:
            raise ValueError("shots must be positive")
        counts = sim.sample_counts(circuit, shots)
        zeros = sum(count for bits, count in counts.items()
                    if bits[0] == "0")
        p_zero = zeros / shots
    # P(0) = (1 + overlap) / 2; clamp for shot noise.
    return float(min(1.0, max(0.0, 2.0 * p_zero - 1.0)))


def _ancilla_zero_probability(probabilities: np.ndarray,
                              total_qubits: int) -> float:
    half = probabilities.size // 2
    # Ancilla is qubit 0 = the most significant bit.
    return float(probabilities[:half].sum())
