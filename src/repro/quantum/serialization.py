"""Circuit serialization: a QASM-flavoured text format.

Round-trips any bound circuit through a human-readable text form —
useful for persisting optimized circuits, diffing ansätze and shipping
them between processes. The dialect is a strict subset of
OpenQASM 2 syntax (one statement per line, named gates, float
parameters); symbolic parameters must be bound before export.
"""

from __future__ import annotations

import math
import re
from typing import List

from .circuit import Circuit
from .gates import GATE_ARITY, GATE_NUM_PARAMS

_HEADER = "// repro-qasm 1.0"
_STATEMENT = re.compile(
    r"^(?P<name>[a-z0-9]+)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<qubits>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;$"
)
_QUBIT = re.compile(r"q\[(\d+)\]")


def circuit_to_qasm(circuit: Circuit) -> str:
    """Serialize a fully bound circuit to text.

    Raises
    ------
    ValueError
        If the circuit still contains symbolic parameters.
    """
    if circuit.num_parameters:
        raise ValueError(
            "circuit has unbound parameters; bind before serializing"
        )
    lines: List[str] = [
        _HEADER,
        f"qreg q[{circuit.num_qubits}];",
    ]
    for inst in circuit.instructions:
        qubits = ", ".join(f"q[{q}]" for q in inst.qubits)
        if inst.params:
            params = ", ".join(f"{float(p):.17g}" for p in inst.params)
            lines.append(f"{inst.name}({params}) {qubits};")
        else:
            lines.append(f"{inst.name} {qubits};")
    return "\n".join(lines) + "\n"


def circuit_from_qasm(text: str) -> Circuit:
    """Parse the text form back into a circuit.

    Accepts the output of :func:`circuit_to_qasm`: a ``qreg``
    declaration followed by gate statements. Comments (``//``) and
    blank lines are ignored.
    """
    circuit: Circuit = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith("qreg"):
            match = re.match(r"^qreg\s+q\[(\d+)\]\s*;$", line)
            if not match:
                raise ValueError(
                    f"line {line_number}: malformed qreg declaration"
                )
            if circuit is not None:
                raise ValueError(
                    f"line {line_number}: duplicate qreg declaration"
                )
            circuit = Circuit(int(match.group(1)))
            continue
        if circuit is None:
            raise ValueError(
                f"line {line_number}: gate before qreg declaration"
            )
        match = _STATEMENT.match(line)
        if not match:
            raise ValueError(
                f"line {line_number}: cannot parse statement {line!r}"
            )
        name = match.group("name")
        if name not in GATE_ARITY:
            raise ValueError(
                f"line {line_number}: unknown gate {name!r}"
            )
        qubits = [int(q) for q in _QUBIT.findall(match.group("qubits"))]
        params_text = match.group("params")
        params = []
        if params_text:
            params = [_parse_param(p.strip(), line_number)
                      for p in params_text.split(",")]
        if len(params) != GATE_NUM_PARAMS[name]:
            raise ValueError(
                f"line {line_number}: gate {name!r} takes "
                f"{GATE_NUM_PARAMS[name]} parameter(s)"
            )
        circuit.append(name, qubits, params)
    if circuit is None:
        raise ValueError("no qreg declaration found")
    return circuit


def _parse_param(token: str, line_number: int) -> float:
    """Parse a parameter: a float literal, or 'pi'-style shorthands."""
    simple = {"pi": math.pi, "-pi": -math.pi,
              "pi/2": math.pi / 2, "-pi/2": -math.pi / 2,
              "pi/4": math.pi / 4, "-pi/4": -math.pi / 4}
    if token in simple:
        return simple[token]
    try:
        return float(token)
    except ValueError:
        raise ValueError(
            f"line {line_number}: bad parameter {token!r}"
        ) from None
