"""Quantum state tomography.

Reconstructs the density matrix of a prepared state from Pauli
expectation measurements:

    rho = (1 / 2^n) * sum_P <P> P        over all 4^n Pauli strings,

the experimental procedure for characterizing what a circuit actually
produced. With finite shots the linear-inversion estimate can be
unphysical (negative eigenvalues); the standard projection onto the
nearest density matrix fixes that. Exponential in qubit count by
nature — intended for the <= 3-qubit verification regime.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .circuit import Circuit
from .measurement import expectation_with_shots
from .operators import PauliString
from .statevector import StatevectorSimulator

_MAX_TOMOGRAPHY_QUBITS = 4


@dataclass
class TomographyResult:
    """Reconstructed state and measurement bookkeeping."""

    density_matrix: np.ndarray
    num_qubits: int
    num_settings: int          # Pauli strings measured (4^n - 1)
    shots_per_setting: Optional[int]

    def fidelity_with_state(self, state: np.ndarray) -> float:
        """Fidelity ``<psi| rho |psi>`` against a pure reference."""
        psi = np.asarray(state, dtype=complex).reshape(-1)
        psi = psi / np.linalg.norm(psi)
        return float(np.real(psi.conj() @ self.density_matrix @ psi))

    def purity(self) -> float:
        return float(np.trace(self.density_matrix
                              @ self.density_matrix).real)


def pauli_labels(num_qubits: int):
    """All 4^n Pauli labels over I/X/Y/Z (identity first)."""
    return ("".join(chars) for chars in
            itertools.product("IXYZ", repeat=num_qubits))


def state_tomography(circuit: Circuit,
                     shots_per_setting: Optional[int] = None,
                     seed: Optional[int] = None) -> TomographyResult:
    """Full Pauli tomography of the state a circuit prepares.

    ``shots_per_setting=None`` uses exact expectations (ideal
    tomography); a finite value estimates each Pauli from that many
    shots, then projects the linear-inversion estimate back onto the
    physical set (unit-trace positive semidefinite matrices).
    """
    n = circuit.num_qubits
    if n > _MAX_TOMOGRAPHY_QUBITS:
        raise ValueError(
            f"tomography measures 4^n settings; {n} qubits exceeds "
            f"the supported maximum of {_MAX_TOMOGRAPHY_QUBITS}"
        )
    rng = np.random.default_rng(seed)
    sim = StatevectorSimulator()
    dim = 2 ** n
    rho = np.zeros((dim, dim), dtype=complex)
    settings = 0
    for label in pauli_labels(n):
        pauli = PauliString(label)
        if label == "I" * n:
            value = 1.0
        elif shots_per_setting is None:
            value = sim.expectation(circuit, pauli)
        else:
            value = expectation_with_shots(
                circuit, pauli, shots_per_setting, rng=rng
            )
            settings += 1
        rho += value * pauli.matrix()
    if shots_per_setting is None:
        settings = 4 ** n - 1
    rho /= dim
    rho = project_to_physical(rho)
    return TomographyResult(
        density_matrix=rho,
        num_qubits=n,
        num_settings=settings,
        shots_per_setting=shots_per_setting,
    )


def project_to_physical(matrix: np.ndarray) -> np.ndarray:
    """Nearest density matrix: Hermitize, clip negative eigenvalues to
    zero (Smolin-Gambetta-Smith style simple projection), renormalize
    the trace."""
    hermitian = 0.5 * (matrix + matrix.conj().T)
    eigenvalues, eigenvectors = np.linalg.eigh(hermitian)
    clipped = np.clip(eigenvalues, 0.0, None)
    total = clipped.sum()
    if total <= 0:
        dim = matrix.shape[0]
        return np.eye(dim, dtype=complex) / dim
    clipped /= total
    return (eigenvectors * clipped) @ eigenvectors.conj().T


def reconstruction_error(result: TomographyResult,
                         reference: np.ndarray) -> float:
    """Trace distance ``(1/2) ||rho - sigma||_1`` to a reference
    density matrix."""
    difference = result.density_matrix - np.asarray(reference,
                                                    dtype=complex)
    singular_values = np.linalg.svd(difference, compute_uv=False)
    return float(0.5 * singular_values.sum())
