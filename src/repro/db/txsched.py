"""Transaction scheduling as conflict-graph colouring QUBO.

Following the quantum transaction-scheduling line of work (Bittner &
Groppe), transactions with overlapping read/write sets conflict and
cannot run in the same batch (time slot). Assigning transactions to a
fixed number of slots so that no slot contains a conflict is graph
colouring; the QUBO uses one-hot slot variables per transaction plus a
penalty for conflicting co-residents. Minimizing the number of slots
(the makespan) is a binary search over slot counts. Experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..annealing.qubo import QUBO
from ..compile import (
    CompiledProblem,
    ProblemBuilder,
    SolverConfig,
    analytic_penalty_weight,
    check_bits,
    validate_penalty_scale,
)
from ..compile import solve as dispatch_solve


@dataclass
class Transaction:
    """Read and write sets over named objects."""

    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def conflicts_with(self, other: "Transaction") -> bool:
        """Standard conflict rule: any W-W, W-R or R-W overlap."""
        return bool(
            self.writes & other.writes
            or self.writes & other.reads
            or self.reads & other.writes
        )


class TransactionSchedulingProblem:
    """A batch of transactions plus the induced conflict graph."""

    def __init__(self, transactions: Sequence[Transaction]):
        if len(transactions) < 1:
            raise ValueError("need at least one transaction")
        self.transactions = list(transactions)
        self.conflicts: Set[Tuple[int, int]] = set()
        for i in range(len(transactions)):
            for j in range(i + 1, len(transactions)):
                if transactions[i].conflicts_with(transactions[j]):
                    self.conflicts.add((i, j))

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    def conflict_degree(self, t: int) -> int:
        return sum(1 for (a, b) in self.conflicts if t in (a, b))

    def num_conflict_violations(self, schedule: Sequence[int]) -> int:
        """Conflicting pairs placed in the same slot."""
        if len(schedule) != self.num_transactions:
            raise ValueError("schedule must assign every transaction")
        return sum(
            1 for (a, b) in self.conflicts if schedule[a] == schedule[b]
        )

    def makespan(self, schedule: Sequence[int]) -> int:
        """Number of distinct slots used."""
        return len(set(schedule))

    def is_valid(self, schedule: Sequence[int]) -> bool:
        return self.num_conflict_violations(schedule) == 0

    @classmethod
    def random(cls, num_transactions: int, num_objects: int = 20,
               operations_per_transaction: int = 4,
               write_probability: float = 0.4,
               seed: Optional[int] = None
               ) -> "TransactionSchedulingProblem":
        """Random read/write sets over a shared object pool."""
        if num_transactions < 1 or num_objects < 1:
            raise ValueError("counts must be positive")
        if operations_per_transaction < 1:
            raise ValueError("operations_per_transaction must be >= 1")
        rng = np.random.default_rng(seed)
        transactions: List[Transaction] = []
        for _ in range(num_transactions):
            objects = rng.choice(
                num_objects,
                size=min(operations_per_transaction, num_objects),
                replace=False,
            )
            reads: Set[str] = set()
            writes: Set[str] = set()
            for obj in objects:
                name = f"o{obj}"
                if rng.random() < write_probability:
                    writes.add(name)
                else:
                    reads.add(name)
            transactions.append(
                Transaction(frozenset(reads), frozenset(writes))
            )
        return cls(transactions)


class TransactionSchedulingQUBO:
    """One-hot slot assignment with conflict penalties."""

    def __init__(self, problem: TransactionSchedulingProblem,
                 num_slots: int, penalty_scale: float = 1.0,
                 slot_bias: float = 0.01):
        if num_slots < 1:
            raise ValueError("num_slots must be positive")
        self.problem = problem
        self.num_slots = num_slots
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        # A tiny preference for earlier slots breaks degeneracy and
        # packs transactions left, shrinking the realized makespan.
        self.slot_bias = slot_bias
        self.num_variables = problem.num_transactions * num_slots
        self._compiled: Optional[CompiledProblem] = None

    def variable(self, transaction: int, slot: int) -> int:
        if not 0 <= transaction < self.problem.num_transactions:
            raise ValueError("transaction out of range")
        if not 0 <= slot < self.num_slots:
            raise ValueError("slot out of range")
        return transaction * self.num_slots + slot

    def penalty_weight(self) -> float:
        """Exceeds the total slot-bias objective, so assignment
        validity always dominates."""
        max_bias = (self.slot_bias * (self.num_slots - 1)
                    * self.problem.num_transactions)
        return analytic_penalty_weight(max_bias, self.penalty_scale)

    def compile(self) -> CompiledProblem:
        """Lower the formulation to the shared IR (cached)."""
        if self._compiled is not None:
            return self._compiled
        problem = self.problem
        builder = ProblemBuilder("transaction_scheduling",
                                 penalty_scale=self.penalty_scale)
        for t in range(problem.num_transactions):
            for s in range(self.num_slots):
                builder.add_variable("x", t, s)
        weight = self.penalty_weight()
        for t in range(problem.num_transactions):
            builder.exactly_one(
                [self.variable(t, s) for s in range(self.num_slots)],
                weight,
            )
        for (a, b) in sorted(problem.conflicts):
            for s in range(self.num_slots):
                builder.forbid_together(
                    self.variable(a, s), self.variable(b, s), weight
                )
        if self.slot_bias:
            for t in range(problem.num_transactions):
                for s in range(self.num_slots):
                    builder.add_linear(
                        self.variable(t, s), self.slot_bias * s
                    )

        def score(schedule: List[int]) -> Tuple[int, int]:
            return (problem.num_conflict_violations(schedule),
                    problem.makespan(schedule))

        self._compiled = builder.finish(
            decode=self.decode,
            score=score,
            feasible=problem.is_valid,
            repair=self.repair,
            metadata={"penalty_weight": weight,
                      "num_slots": self.num_slots,
                      "num_transactions": problem.num_transactions},
        )
        return self._compiled

    def build(self) -> QUBO:
        return self.compile().model

    def repair(self, schedule: Sequence[int]) -> List[int]:
        """Re-slot conflicting transactions greedily, in index order.

        Each transaction keeps its slot unless it conflicts with an
        earlier (already repaired) one, in which case it moves to the
        first conflict-free slot. With ``num_slots >=`` the chromatic
        number this always yields a valid schedule.
        """
        repaired: List[int] = []
        for t in range(self.problem.num_transactions):
            blocked = {
                repaired[other]
                for (a, b) in self.problem.conflicts
                for other in ((a,) if b == t else (b,) if a == t else ())
                if other < t
            }
            slot = schedule[t]
            if slot in blocked or not 0 <= slot < self.num_slots:
                free = [s for s in range(self.num_slots)
                        if s not in blocked]
                slot = free[0] if free else schedule[t]
            repaired.append(slot)
        return repaired

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Bits -> slot per transaction; invalid rows take the
        first conflict-free slot (or slot 0)."""
        bits = check_bits(bits, self.num_variables)
        schedule: List[int] = []
        for t in range(self.problem.num_transactions):
            assigned = [s for s in range(self.num_slots)
                        if bits[self.variable(t, s)] == 1]
            if len(assigned) == 1:
                schedule.append(assigned[0])
                continue
            conflicting = {
                schedule[other]
                for (a, b) in self.problem.conflicts
                for other in ((a,) if b == t else (b,) if a == t else ())
                if other < t
            }
            candidates = assigned or list(range(self.num_slots))
            free = [s for s in candidates if s not in conflicting]
            schedule.append((free or candidates)[0])
        return schedule


def schedule_greedy_first_fit(problem: TransactionSchedulingProblem
                              ) -> List[int]:
    """Largest-degree-first greedy colouring: the classical baseline."""
    order = sorted(
        range(problem.num_transactions),
        key=problem.conflict_degree,
        reverse=True,
    )
    schedule = [-1] * problem.num_transactions
    for t in order:
        blocked = {
            schedule[other]
            for (a, b) in problem.conflicts
            for other in ((a,) if b == t else (b,) if a == t else ())
            if schedule[other] >= 0
        }
        slot = 0
        while slot in blocked:
            slot += 1
        schedule[t] = slot
    return schedule


def schedule_fcfs(problem: TransactionSchedulingProblem) -> List[int]:
    """First-come-first-served: arrival order, first conflict-free slot."""
    schedule = [-1] * problem.num_transactions
    for t in range(problem.num_transactions):
        blocked = {
            schedule[other]
            for (a, b) in problem.conflicts
            for other in ((a,) if b == t else (b,) if a == t else ())
            if schedule[other] >= 0
        }
        slot = 0
        while slot in blocked:
            slot += 1
        schedule[t] = slot
    return schedule


#: Default dispatch configuration of :func:`solve_scheduling_annealing`.
DEFAULT_SOLVER_CONFIG = SolverConfig(num_sweeps=300, num_reads=20, seed=0)


def solve_scheduling_annealing(problem: TransactionSchedulingProblem,
                               num_slots: int, solver=None,
                               penalty_scale: float = 1.0,
                               config: Optional[SolverConfig] = None
                               ) -> List[int]:
    """Compile the fixed-slot colouring QUBO, dispatch, decode.

    ``solver`` is a registry name or solver instance; ``None`` means
    simulated annealing. Registry names with no explicit ``config``
    run at the deterministic :data:`DEFAULT_SOLVER_CONFIG`.
    """
    compiled = TransactionSchedulingQUBO(
        problem, num_slots, penalty_scale=penalty_scale
    ).compile()
    if solver is None:
        solver = "sa"
    if isinstance(solver, str) and config is None:
        config = DEFAULT_SOLVER_CONFIG
    return dispatch_solve(compiled, solver=solver, config=config).solution


def minimum_slots_annealing(problem: TransactionSchedulingProblem,
                            solver_factory=None,
                            max_slots: Optional[int] = None,
                            solver=None,
                            config: Optional[SolverConfig] = None
                            ) -> List[int]:
    """Smallest slot count with a conflict-free annealed schedule.

    Linear scan upward from 1 (slot counts are small); falls back to
    the greedy schedule if annealing never finds a valid colouring.
    ``solver_factory(k)`` (one solver instance per slot count) takes
    precedence; otherwise ``solver``/``config`` are dispatched through
    the registry for every slot count.
    """
    greedy = schedule_greedy_first_fit(problem)
    ceiling = max_slots or problem.makespan(greedy)
    for k in range(1, ceiling + 1):
        arm = solver_factory(k) if solver_factory else solver
        schedule = solve_scheduling_annealing(problem, k, solver=arm,
                                              config=config)
        if problem.is_valid(schedule):
            return schedule
    return greedy
