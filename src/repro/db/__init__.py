"""Database substrate and quantum-optimization formulations.

A small but real relational layer (catalog, statistics, cost model,
workload generators) plus the four database optimization problems the
tutorial casts as QUBOs — join ordering, multiple-query optimization,
index selection, transaction scheduling — and the learned cardinality
estimation workload.
"""

from .cardinality import (
    CardinalityDataset,
    RangeQuery,
    evaluate_q_errors,
    featurize,
    generate_workload,
    histogram_estimates,
    make_cardinality_dataset,
)
from .catalog import Catalog, ColumnStats, Table
from .cost import (
    estimate_range_cardinality,
    estimate_range_selectivity,
    left_deep_cost,
    log_cost_proxy,
    q_error,
    selectivity_from_stats,
    tree_cost,
)
from .executor import (
    EquiJoinPredicate,
    ExecutionResult,
    HashJoinExecutor,
    PhysicalQuery,
    validate_cost_model,
)
from .datagen import (
    correlated_columns,
    make_correlated_table,
    make_star_schema,
    make_tpch_like_schema,
    tpch_chain_join_query,
    true_range_cardinality,
    zipf_column,
)
from .indexsel import (
    IndexSelectionProblem,
    IndexSelectionQUBO,
    solve_index_selection_annealing,
    solve_index_selection_exact,
    solve_index_selection_greedy,
)
from .joinorder import (
    JoinOrderDecoded,
    JoinOrderQUBO,
    dp_optimal,
    exhaustive_left_deep,
    greedy_goo,
    solve_join_order_annealing,
    solve_join_order_grover,
    two_opt_polish,
)
from .mqo import (
    MQOProblem,
    MQOQUBO,
    solve_mqo_annealing,
    solve_mqo_exhaustive,
    solve_mqo_greedy,
)
from .partitioning import (
    PartitioningIsing,
    PartitioningProblem,
    partition_annealing,
    partition_exact,
    partition_kernighan_lin,
)
from .query import JoinGraph, JoinTree, left_deep_tree
from .rl_optimizer import QLearningJoinOptimizer, solve_join_order_rl
from .txsched import (
    Transaction,
    TransactionSchedulingProblem,
    TransactionSchedulingQUBO,
    minimum_slots_annealing,
    schedule_fcfs,
    schedule_greedy_first_fit,
    solve_scheduling_annealing,
)
from .workloads import (
    TOPOLOGIES,
    JoinWorkload,
    WorkloadInstance,
    generate_join_workload,
    instance_identity,
    random_join_graph,
    topology_edges,
)

__all__ = [
    "CardinalityDataset",
    "RangeQuery",
    "evaluate_q_errors",
    "featurize",
    "generate_workload",
    "histogram_estimates",
    "make_cardinality_dataset",
    "Catalog",
    "ColumnStats",
    "Table",
    "estimate_range_cardinality",
    "estimate_range_selectivity",
    "left_deep_cost",
    "log_cost_proxy",
    "q_error",
    "selectivity_from_stats",
    "tree_cost",
    "EquiJoinPredicate",
    "ExecutionResult",
    "HashJoinExecutor",
    "PhysicalQuery",
    "validate_cost_model",
    "correlated_columns",
    "make_correlated_table",
    "make_star_schema",
    "make_tpch_like_schema",
    "tpch_chain_join_query",
    "true_range_cardinality",
    "zipf_column",
    "IndexSelectionProblem",
    "IndexSelectionQUBO",
    "solve_index_selection_annealing",
    "solve_index_selection_exact",
    "solve_index_selection_greedy",
    "JoinOrderDecoded",
    "JoinOrderQUBO",
    "dp_optimal",
    "exhaustive_left_deep",
    "greedy_goo",
    "solve_join_order_annealing",
    "solve_join_order_grover",
    "two_opt_polish",
    "MQOProblem",
    "MQOQUBO",
    "solve_mqo_annealing",
    "solve_mqo_exhaustive",
    "solve_mqo_greedy",
    "PartitioningIsing",
    "PartitioningProblem",
    "partition_annealing",
    "partition_exact",
    "partition_kernighan_lin",
    "JoinGraph",
    "JoinTree",
    "left_deep_tree",
    "QLearningJoinOptimizer",
    "solve_join_order_rl",
    "Transaction",
    "TransactionSchedulingProblem",
    "TransactionSchedulingQUBO",
    "minimum_slots_annealing",
    "schedule_fcfs",
    "schedule_greedy_first_fit",
    "solve_scheduling_annealing",
    "TOPOLOGIES",
    "JoinWorkload",
    "WorkloadInstance",
    "generate_join_workload",
    "instance_identity",
    "random_join_graph",
    "topology_edges",
]
