"""Multiple-query optimization (MQO) as a QUBO.

Reproduces the Trummer & Koch formulation (the first database problem
run on a quantum annealer): a batch of queries each has alternative
plans; pairs of plans from *different* queries can share intermediate
results, saving cost. Choosing one plan per query to minimize

    sum_p cost_p x_p  -  sum_{p, q} saving_pq x_p x_q

is naturally quadratic; the one-plan-per-query constraint becomes a
penalty. Experiment E9.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..annealing.qubo import QUBO
from ..compile import (
    CompiledProblem,
    ProblemBuilder,
    SolverConfig,
    analytic_penalty_weight,
    check_bits,
    validate_penalty_scale,
)
from ..compile import solve as dispatch_solve


@dataclass
class MQOProblem:
    """Plan costs per query plus pairwise cross-query savings.

    ``plan_costs[q][k]`` is the cost of query q's k-th plan.
    ``savings`` maps ((q1, k1), (q2, k2)) with q1 != q2 to a positive
    saving realized when both plans are selected.
    """

    plan_costs: List[List[float]]
    savings: Dict[Tuple[Tuple[int, int], Tuple[int, int]], float] = field(
        default_factory=dict
    )

    def __post_init__(self):
        if len(self.plan_costs) < 1:
            raise ValueError("need at least one query")
        for q, costs in enumerate(self.plan_costs):
            if not costs:
                raise ValueError(f"query {q} has no plans")
            if any(c < 0 for c in costs):
                raise ValueError("plan costs must be non-negative")
        normalized: Dict[Tuple[Tuple[int, int], Tuple[int, int]], float] = {}
        for (plan_a, plan_b), value in self.savings.items():
            self._check_plan(plan_a)
            self._check_plan(plan_b)
            if plan_a[0] == plan_b[0]:
                raise ValueError("savings must link different queries")
            if value < 0:
                raise ValueError("savings must be non-negative")
            key = (min(plan_a, plan_b), max(plan_a, plan_b))
            normalized[key] = normalized.get(key, 0.0) + float(value)
        self.savings = normalized

    def _check_plan(self, plan: Tuple[int, int]) -> None:
        q, k = plan
        if not 0 <= q < len(self.plan_costs):
            raise ValueError(f"query {q} out of range")
        if not 0 <= k < len(self.plan_costs[q]):
            raise ValueError(f"plan {k} out of range for query {q}")

    @property
    def num_queries(self) -> int:
        return len(self.plan_costs)

    @property
    def num_plans(self) -> int:
        return sum(len(costs) for costs in self.plan_costs)

    def total_cost(self, selection: Sequence[int]) -> float:
        """Cost of one plan choice per query, savings included."""
        if len(selection) != self.num_queries:
            raise ValueError("selection must pick one plan per query")
        total = 0.0
        for q, k in enumerate(selection):
            self._check_plan((q, k))
            total += self.plan_costs[q][k]
        for (plan_a, plan_b), value in self.savings.items():
            if (selection[plan_a[0]] == plan_a[1]
                    and selection[plan_b[0]] == plan_b[1]):
                total -= value
        return total

    @classmethod
    def random(cls, num_queries: int, plans_per_query: int = 3,
               sharing_probability: float = 0.3,
               max_cost: float = 100.0,
               seed: Optional[int] = None) -> "MQOProblem":
        """Random instance in the style of the original evaluation."""
        if num_queries < 1 or plans_per_query < 1:
            raise ValueError("num_queries and plans_per_query must be >= 1")
        if not 0 <= sharing_probability <= 1:
            raise ValueError("sharing_probability must be in [0, 1]")
        rng = np.random.default_rng(seed)
        plan_costs = [
            [float(rng.uniform(0.2 * max_cost, max_cost))
             for _ in range(plans_per_query)]
            for _ in range(num_queries)
        ]
        savings: Dict[Tuple[Tuple[int, int], Tuple[int, int]], float] = {}
        for q1 in range(num_queries):
            for q2 in range(q1 + 1, num_queries):
                for k1 in range(plans_per_query):
                    for k2 in range(plans_per_query):
                        if rng.random() < sharing_probability:
                            ceiling = 0.5 * min(
                                plan_costs[q1][k1], plan_costs[q2][k2]
                            )
                            savings[((q1, k1), (q2, k2))] = float(
                                rng.uniform(0.1 * ceiling, ceiling)
                            )
        return cls(plan_costs=plan_costs, savings=savings)


class MQOQUBO:
    """QUBO compiler for an :class:`MQOProblem`."""

    def __init__(self, problem: MQOProblem, penalty_scale: float = 1.0):
        self.problem = problem
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        self._offsets: List[int] = []
        offset = 0
        for costs in problem.plan_costs:
            self._offsets.append(offset)
            offset += len(costs)
        self.num_variables = offset
        self._compiled: Optional[CompiledProblem] = None

    def variable(self, query: int, plan: int) -> int:
        """Flat index of plan ``plan`` of query ``query``."""
        self.problem._check_plan((query, plan))
        return self._offsets[query] + plan

    def penalty_weight(self) -> float:
        """Exceeds the worst objective swing from breaking a one-hot.

        Selecting an *extra* plan p can gain at most the sum of savings
        involving p (minus its cost); selecting *no* plan for a query
        can gain at most the cheapest plan's cost. The weight needs to
        beat both — and a *tight* weight matters in practice: oversized
        penalties build barriers single-flip annealers cannot cross.
        """
        max_cost = max(max(costs) for costs in self.problem.plan_costs)
        per_plan_savings: Dict[Tuple[int, int], float] = {}
        for (plan_a, plan_b), value in self.problem.savings.items():
            per_plan_savings[plan_a] = per_plan_savings.get(plan_a, 0.0) + value
            per_plan_savings[plan_b] = per_plan_savings.get(plan_b, 0.0) + value
        max_plan_savings = max(per_plan_savings.values(), default=0.0)
        return analytic_penalty_weight(max(max_cost, max_plan_savings),
                                       self.penalty_scale)

    def compile(self) -> CompiledProblem:
        """Lower the formulation to the shared IR (cached)."""
        if self._compiled is not None:
            return self._compiled
        problem = self.problem
        builder = ProblemBuilder("mqo", penalty_scale=self.penalty_scale)
        for q, costs in enumerate(problem.plan_costs):
            for k in range(len(costs)):
                builder.add_variable("x", q, k)
        for q, costs in enumerate(problem.plan_costs):
            for k, cost in enumerate(costs):
                builder.add_linear(self.variable(q, k), cost)
        for (plan_a, plan_b), value in problem.savings.items():
            builder.add_quadratic(
                self.variable(*plan_a), self.variable(*plan_b), -value
            )
        weight = self.penalty_weight()
        for q, costs in enumerate(problem.plan_costs):
            builder.exactly_one(
                [self.variable(q, k) for k in range(len(costs))], weight
            )

        def feasible(selection: Sequence[int]) -> bool:
            if len(selection) != problem.num_queries:
                return False
            return all(
                0 <= k < len(problem.plan_costs[q])
                for q, k in enumerate(selection)
            )

        self._compiled = builder.finish(
            decode=self.decode,
            score=problem.total_cost,
            feasible=feasible,
            metadata={"penalty_weight": weight,
                      "num_queries": problem.num_queries},
        )
        return self._compiled

    def build(self) -> QUBO:
        return self.compile().model

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Bits -> one plan index per query, repairing invalid rows by
        picking the cheapest set (or overall cheapest) plan."""
        bits = check_bits(bits, self.num_variables)
        selection: List[int] = []
        for q, costs in enumerate(self.problem.plan_costs):
            chosen = [k for k in range(len(costs))
                      if bits[self.variable(q, k)] == 1]
            if len(chosen) == 1:
                selection.append(chosen[0])
            elif chosen:
                selection.append(min(chosen, key=lambda k: costs[k]))
            else:
                selection.append(int(np.argmin(costs)))
        return selection


def solve_mqo_exhaustive(problem: MQOProblem) -> Tuple[List[int], float]:
    """Optimal selection by enumerating the full plan product."""
    best_selection: Optional[List[int]] = None
    best_cost = math.inf
    ranges = [range(len(costs)) for costs in problem.plan_costs]
    for selection in itertools.product(*ranges):
        cost = problem.total_cost(selection)
        if cost < best_cost:
            best_cost = cost
            best_selection = list(selection)
    return best_selection, best_cost


def solve_mqo_greedy(problem: MQOProblem) -> Tuple[List[int], float]:
    """Cheapest plan per query, then single-query hill climbing on the
    shared-cost objective until a local optimum."""
    selection = [int(np.argmin(costs)) for costs in problem.plan_costs]
    cost = problem.total_cost(selection)
    improved = True
    while improved:
        improved = False
        for q, costs in enumerate(problem.plan_costs):
            for k in range(len(costs)):
                if k == selection[q]:
                    continue
                candidate = list(selection)
                candidate[q] = k
                candidate_cost = problem.total_cost(candidate)
                if candidate_cost < cost - 1e-12:
                    selection, cost = candidate, candidate_cost
                    improved = True
    return selection, cost


#: Default dispatch configuration of :func:`solve_mqo_annealing`.
DEFAULT_SOLVER_CONFIG = SolverConfig(num_sweeps=500, num_reads=30, seed=0)


def solve_mqo_annealing(problem: MQOProblem, solver=None,
                        penalty_scale: float = 1.0,
                        config: Optional[SolverConfig] = None
                        ) -> Tuple[List[int], float]:
    """Compile to QUBO, dispatch a solver, decode the best read.

    ``solver`` is a registry name or solver instance; ``None`` means
    simulated annealing. Registry names with no explicit ``config``
    run at the deterministic :data:`DEFAULT_SOLVER_CONFIG`.
    """
    compiled = MQOQUBO(problem, penalty_scale=penalty_scale).compile()
    if solver is None:
        solver = "sa"
    if isinstance(solver, str) and config is None:
        config = DEFAULT_SOLVER_CONFIG
    result = dispatch_solve(compiled, solver=solver, config=config)
    return result.solution, problem.total_cost(result.solution)
