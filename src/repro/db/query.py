"""Query-graph representation for join ordering.

A :class:`JoinGraph` is the optimizer-facing abstraction: relations
with base cardinalities and join edges with selectivities. Join trees
over the graph are built from :class:`JoinTree` nodes and costed by the
C_out model in :mod:`repro.db.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple



class JoinGraph:
    """Relations (0..n-1) with cardinalities and selectivity edges."""

    def __init__(self, cardinalities: Sequence[float],
                 selectivities: Mapping[Tuple[int, int], float],
                 names: Optional[Sequence[str]] = None):
        if len(cardinalities) < 2:
            raise ValueError("a join graph needs at least two relations")
        self.cardinalities = [float(c) for c in cardinalities]
        if any(c < 1 for c in self.cardinalities):
            raise ValueError("cardinalities must be >= 1")
        self.num_relations = len(self.cardinalities)
        self.selectivities: Dict[Tuple[int, int], float] = {}
        for (a, b), sel in selectivities.items():
            self._check_rel(a)
            self._check_rel(b)
            if a == b:
                raise ValueError("self-joins are not edges")
            if not 0 < sel <= 1:
                raise ValueError(
                    f"selectivity must be in (0, 1], got {sel}"
                )
            self.selectivities[(min(a, b), max(a, b))] = float(sel)
        if names is not None:
            if len(names) != self.num_relations:
                raise ValueError("names length must match relations")
            self.names = list(names)
        else:
            self.names = [f"R{i}" for i in range(self.num_relations)]

    # ------------------------------------------------------------------
    def selectivity(self, a: int, b: int) -> float:
        """Edge selectivity, or 1.0 (cross product) if no edge."""
        return self.selectivities.get((min(a, b), max(a, b)), 1.0)

    def neighbors(self, relation: int) -> List[int]:
        """Relations joined to the given one by an edge."""
        self._check_rel(relation)
        out = []
        for (a, b) in self.selectivities:
            if a == relation:
                out.append(b)
            elif b == relation:
                out.append(a)
        return sorted(out)

    def edges(self) -> List[Tuple[int, int]]:
        return sorted(self.selectivities)

    def subset_cardinality(self, relations: Iterable[int]) -> float:
        """Estimated result size of joining a set of relations.

        Product of base cardinalities times selectivities of all edges
        inside the set (independence assumption — the classical
        textbook estimator).
        """
        members = sorted(set(relations))
        if not members:
            raise ValueError("empty relation set")
        size = 1.0
        for r in members:
            self._check_rel(r)
            size *= self.cardinalities[r]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                size *= self.selectivity(a, b)
        return size

    def is_connected_subset(self, relations: Iterable[int]) -> bool:
        """Whether the induced subgraph on the given relations connects."""
        members = sorted(set(relations))
        if not members:
            return False
        seen = {members[0]}
        frontier = [members[0]]
        member_set = set(members)
        while frontier:
            current = frontier.pop()
            for other in self.neighbors(current):
                if other in member_set and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return seen == member_set

    def _check_rel(self, relation: int) -> None:
        if not 0 <= relation < self.num_relations:
            raise ValueError(
                f"relation {relation} out of range "
                f"[0, {self.num_relations})"
            )

    def __repr__(self) -> str:
        return (
            f"JoinGraph(relations={self.num_relations}, "
            f"edges={len(self.selectivities)})"
        )


@dataclass(frozen=True)
class JoinTree:
    """Binary join tree: a leaf (one relation) or an inner join node."""

    relations: FrozenSet[int]
    left: Optional["JoinTree"] = None
    right: Optional["JoinTree"] = None

    @classmethod
    def leaf(cls, relation: int) -> "JoinTree":
        return cls(frozenset([relation]))

    @classmethod
    def join(cls, left: "JoinTree", right: "JoinTree") -> "JoinTree":
        if left.relations & right.relations:
            raise ValueError("join inputs must be disjoint")
        return cls(left.relations | right.relations, left, right)

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def inner_nodes(self) -> List["JoinTree"]:
        """All join (non-leaf) nodes, leaves excluded."""
        if self.is_leaf:
            return []
        return (self.left.inner_nodes() + self.right.inner_nodes()
                + [self])

    def is_left_deep(self) -> bool:
        """True if every right child is a leaf."""
        if self.is_leaf:
            return True
        return self.right.is_leaf and self.left.is_left_deep()

    def leaf_order(self) -> List[int]:
        """Relations in left-to-right leaf order."""
        if self.is_leaf:
            return [next(iter(self.relations))]
        return self.left.leaf_order() + self.right.leaf_order()

    def display(self, names: Optional[Sequence[str]] = None) -> str:
        """Parenthesized rendering, e.g. ``((R0 ⋈ R1) ⋈ R2)``."""
        if self.is_leaf:
            relation = next(iter(self.relations))
            return names[relation] if names else f"R{relation}"
        return (f"({self.left.display(names)} ⋈ "
                f"{self.right.display(names)})")


def left_deep_tree(order: Sequence[int]) -> JoinTree:
    """Build the left-deep tree joining relations in the given order."""
    if len(order) < 2:
        raise ValueError("need at least two relations")
    if len(set(order)) != len(order):
        raise ValueError("order must not repeat relations")
    tree = JoinTree.leaf(order[0])
    for relation in order[1:]:
        tree = JoinTree.join(tree, JoinTree.leaf(relation))
    return tree
