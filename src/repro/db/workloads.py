"""Workload generators: join graphs of standard topologies.

The join-ordering literature (and its quantum offshoots) evaluates on
chain, star, cycle and clique query shapes with log-uniform base
cardinalities and random selectivities; these generators reproduce
that setup with seeds.

:func:`generate_join_workload` scales the single-graph generator into
a JOB-style benchmark suite: a parameterized grid of (topology, size)
cells with several instances each, hundreds of queries at full scale.
Every instance's RNG seed is derived by hashing its *identity*
(workload seed + cell + index) with SHA-256, so the suite is
bit-identical across runs, platforms and generation order — and each
instance is independently regenerable from its coordinates alone. The
suite carries a stable ``workload_key`` (content hash of the
generation parameters) used by benchmarks, caches and ``bench-compare``
to tell "same workload, different solver" from "different workload".
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .query import JoinGraph

TOPOLOGIES = ("chain", "star", "cycle", "clique")

#: Hex digits kept from SHA-256 digests for workload/instance keys.
_KEY_LENGTH = 12


def random_join_graph(num_relations: int, topology: str = "chain",
                      min_cardinality: float = 10.0,
                      max_cardinality: float = 100_000.0,
                      min_selectivity: float = 1e-4,
                      max_selectivity: float = 0.5,
                      seed: Optional[int] = None) -> JoinGraph:
    """A random join graph of the given topology.

    Cardinalities are log-uniform in [min, max]; each topology edge
    gets a log-uniform selectivity.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be one of {TOPOLOGIES}")
    if num_relations < 2:
        raise ValueError("need at least two relations")
    if not 0 < min_selectivity <= max_selectivity <= 1:
        raise ValueError("selectivity bounds must satisfy 0 < min <= max <= 1")
    rng = np.random.default_rng(seed)
    cardinalities = np.exp(rng.uniform(
        np.log(min_cardinality), np.log(max_cardinality),
        size=num_relations,
    ))
    edges = topology_edges(num_relations, topology)
    selectivities: Dict[Tuple[int, int], float] = {}
    for edge in edges:
        selectivities[edge] = float(np.exp(rng.uniform(
            np.log(min_selectivity), np.log(max_selectivity)
        )))
    return JoinGraph(list(cardinalities), selectivities)


@dataclass(frozen=True)
class WorkloadInstance:
    """One generated query: the join graph plus its stable identity."""

    graph: JoinGraph
    topology: str
    num_relations: int
    index: int
    seed: int
    instance_key: str


@dataclass
class JoinWorkload:
    """A generated suite of join-ordering queries.

    ``workload_key`` content-addresses the full generation parameters
    (including any ``limit``); ``base_key`` addresses the parameters
    *without* the limit, so a truncated workload is a stable prefix of
    the unlimited one and instances keep their keys either way.
    """

    params: Dict[str, Any]
    workload_key: str
    base_key: str
    instances: List[WorkloadInstance] = field(default_factory=list)

    def graphs(self) -> List[JoinGraph]:
        return [instance.graph for instance in self.instances]

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[WorkloadInstance]:
        return iter(self.instances)

    def __getitem__(self, index: int) -> WorkloadInstance:
        return self.instances[index]

    def __repr__(self) -> str:
        return (
            f"JoinWorkload(key={self.workload_key!r}, "
            f"queries={len(self.instances)})"
        )


def _content_key(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:_KEY_LENGTH]


def instance_identity(base_key: str, topology: str,
                      num_relations: int, index: int
                      ) -> Tuple[int, str]:
    """Derived (rng seed, instance key) of one workload coordinate.

    SHA-256 of the coordinate string — not ``rng.integers`` draws — so
    instance seeds do not depend on generation order, numpy version,
    or which other cells the workload contains.
    """
    descriptor = f"{base_key}|{topology}|n={num_relations}|i={index}"
    digest = hashlib.sha256(descriptor.encode())
    seed = int.from_bytes(digest.digest()[:4], "big")
    return seed, digest.hexdigest()[:_KEY_LENGTH]


def generate_join_workload(topologies: Sequence[str] = TOPOLOGIES,
                           sizes: Sequence[int] = (4, 5, 6),
                           instances_per_cell: int = 10, *,
                           seed: int = 0,
                           min_cardinality: float = 10.0,
                           max_cardinality: float = 100_000.0,
                           min_selectivity: float = 1e-4,
                           max_selectivity: float = 0.5,
                           limit: Optional[int] = None
                           ) -> JoinWorkload:
    """Generate a deterministic JOB-style join-ordering suite.

    The grid is ``topologies × sizes × instances_per_cell`` in that
    nesting order; ``limit`` truncates to the first N queries (handy
    for fixed-size CI smoke suites). Regenerating with the same
    parameters reproduces every graph bit-for-bit.
    """
    topologies = tuple(topologies)
    sizes = tuple(int(n) for n in sizes)
    for topology in topologies:
        if topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, "
                f"got {topology!r}"
            )
    if not topologies or not sizes:
        raise ValueError("need at least one topology and one size")
    if any(n < 2 for n in sizes):
        raise ValueError("sizes must be >= 2 relations")
    if instances_per_cell < 1:
        raise ValueError("instances_per_cell must be positive")
    if limit is not None and limit < 1:
        raise ValueError("limit must be positive when given")

    base_params: Dict[str, Any] = {
        "generator": "join_workload/v1",
        "topologies": list(topologies),
        "sizes": list(sizes),
        "instances_per_cell": int(instances_per_cell),
        "seed": int(seed),
        "min_cardinality": float(min_cardinality),
        "max_cardinality": float(max_cardinality),
        "min_selectivity": float(min_selectivity),
        "max_selectivity": float(max_selectivity),
    }
    base_key = _content_key(base_params)
    params = dict(base_params, limit=limit)
    workload_key = _content_key(params)

    instances: List[WorkloadInstance] = []
    done = False
    for topology in topologies:
        for num_relations in sizes:
            for index in range(instances_per_cell):
                if limit is not None and len(instances) >= limit:
                    done = True
                    break
                instance_seed, instance_key = instance_identity(
                    base_key, topology, num_relations, index
                )
                graph = random_join_graph(
                    num_relations, topology,
                    min_cardinality=min_cardinality,
                    max_cardinality=max_cardinality,
                    min_selectivity=min_selectivity,
                    max_selectivity=max_selectivity,
                    seed=instance_seed,
                )
                instances.append(WorkloadInstance(
                    graph=graph,
                    topology=topology,
                    num_relations=num_relations,
                    index=index,
                    seed=instance_seed,
                    instance_key=instance_key,
                ))
            if done:
                break
        if done:
            break
    return JoinWorkload(
        params=params,
        workload_key=workload_key,
        base_key=base_key,
        instances=instances,
    )


def topology_edges(num_relations: int, topology: str) -> list:
    """Edge list of a named query-graph topology over n relations."""
    if topology == "chain":
        return [(i, i + 1) for i in range(num_relations - 1)]
    if topology == "star":
        return [(0, i) for i in range(1, num_relations)]
    if topology == "cycle":
        chain = [(i, i + 1) for i in range(num_relations - 1)]
        if num_relations > 2:
            chain.append((0, num_relations - 1))
        return chain
    if topology == "clique":
        return [
            (i, j)
            for i in range(num_relations)
            for j in range(i + 1, num_relations)
        ]
    raise ValueError(f"topology must be one of {TOPOLOGIES}")
