"""Workload generators: join graphs of standard topologies.

The join-ordering literature (and its quantum offshoots) evaluates on
chain, star, cycle and clique query shapes with log-uniform base
cardinalities and random selectivities; these generators reproduce
that setup with seeds.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .query import JoinGraph

TOPOLOGIES = ("chain", "star", "cycle", "clique")


def random_join_graph(num_relations: int, topology: str = "chain",
                      min_cardinality: float = 10.0,
                      max_cardinality: float = 100_000.0,
                      min_selectivity: float = 1e-4,
                      max_selectivity: float = 0.5,
                      seed: Optional[int] = None) -> JoinGraph:
    """A random join graph of the given topology.

    Cardinalities are log-uniform in [min, max]; each topology edge
    gets a log-uniform selectivity.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(f"topology must be one of {TOPOLOGIES}")
    if num_relations < 2:
        raise ValueError("need at least two relations")
    if not 0 < min_selectivity <= max_selectivity <= 1:
        raise ValueError("selectivity bounds must satisfy 0 < min <= max <= 1")
    rng = np.random.default_rng(seed)
    cardinalities = np.exp(rng.uniform(
        np.log(min_cardinality), np.log(max_cardinality),
        size=num_relations,
    ))
    edges = topology_edges(num_relations, topology)
    selectivities: Dict[Tuple[int, int], float] = {}
    for edge in edges:
        selectivities[edge] = float(np.exp(rng.uniform(
            np.log(min_selectivity), np.log(max_selectivity)
        )))
    return JoinGraph(list(cardinalities), selectivities)


def topology_edges(num_relations: int, topology: str) -> list:
    """Edge list of a named query-graph topology over n relations."""
    if topology == "chain":
        return [(i, i + 1) for i in range(num_relations - 1)]
    if topology == "star":
        return [(0, i) for i in range(1, num_relations)]
    if topology == "cycle":
        chain = [(i, i + 1) for i in range(num_relations - 1)]
        if num_relations > 2:
            chain.append((0, num_relations - 1))
        return chain
    if topology == "clique":
        return [
            (i, j)
            for i in range(num_relations)
            for j in range(i + 1, num_relations)
        ]
    raise ValueError(f"topology must be one of {TOPOLOGIES}")
