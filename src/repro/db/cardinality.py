"""Learned cardinality estimation workload (experiment E13).

Generates conjunctive range queries over a table with *correlated*
columns — exactly the regime where the classical histogram estimator's
independence assumption breaks — and featurizes them for regression
models. Quantum (VQC regressor), classical learned (linear / MLP) and
the histogram estimator all consume the same dataset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog, Table
from .cost import estimate_range_cardinality, q_error
from .datagen import make_correlated_table, true_range_cardinality


@dataclass
class RangeQuery:
    """Conjunctive inclusive range predicates over named columns."""

    predicates: Dict[str, Tuple[float, float]]

    def __post_init__(self):
        for column, (low, high) in self.predicates.items():
            if high < low:
                raise ValueError(
                    f"empty range on {column}: [{low}, {high}]"
                )


@dataclass
class CardinalityDataset:
    """Featurized workload: per-query features and log-cardinalities."""

    table: Table
    queries: List[RangeQuery]
    features: np.ndarray            # shape (n_queries, 2 * n_columns)
    log_cardinalities: np.ndarray   # log(1 + true count)
    column_order: List[str]

    @property
    def cardinalities(self) -> np.ndarray:
        return np.expm1(self.log_cardinalities)


def generate_workload(table: Table, num_queries: int,
                      columns: Optional[Sequence[str]] = None,
                      width_range: Tuple[float, float] = (0.05, 0.6),
                      seed: Optional[int] = None) -> List[RangeQuery]:
    """Random conjunctive range queries over the given columns.

    Each predicate interval is placed at a random center with a width
    drawn uniformly from ``width_range`` (as a fraction of the column
    domain). Narrow widths are the regime where the independence
    assumption bites on correlated data — the default range mixes
    narrow and medium predicates, matching learned-cardinality
    evaluations.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    low_width, high_width = width_range
    if not 0 < low_width <= high_width <= 1:
        raise ValueError("width_range must satisfy 0 < low <= high <= 1")
    columns = list(columns or sorted(table.columns))
    rng = np.random.default_rng(seed)
    queries: List[RangeQuery] = []
    for _ in range(num_queries):
        predicates: Dict[str, Tuple[float, float]] = {}
        for column in columns:
            values = table.column(column)
            lo, hi = float(values.min()), float(values.max())
            span = hi - lo
            width = rng.uniform(low_width, high_width) * span
            center = rng.uniform(lo, hi)
            a = max(lo, center - width / 2)
            b = min(hi, center + width / 2)
            predicates[column] = (a, b)
        queries.append(RangeQuery(predicates))
    return queries


def featurize(table: Table, queries: Sequence[RangeQuery],
              column_order: Optional[Sequence[str]] = None) -> np.ndarray:
    """Feature matrix: per column, the normalized (low, high) bounds.

    Bounds are min-max scaled into [0, 1] by the column's range, giving
    ``2 * n_columns`` features per query — the standard featurization
    for range-query cardinality models.
    """
    columns = list(column_order or sorted(table.columns))
    rows = []
    for query in queries:
        row: List[float] = []
        for column in columns:
            values = table.column(column)
            lo, hi = float(values.min()), float(values.max())
            span = hi - lo if hi > lo else 1.0
            q_lo, q_hi = query.predicates.get(column, (lo, hi))
            row.append((np.clip(q_lo, lo, hi) - lo) / span)
            row.append((np.clip(q_hi, lo, hi) - lo) / span)
        rows.append(row)
    return np.asarray(rows, dtype=float)


def make_cardinality_dataset(num_rows: int = 2000, num_queries: int = 200,
                             correlation: float = 0.85,
                             num_column_pairs: int = 1,
                             seed: Optional[int] = None
                             ) -> CardinalityDataset:
    """End-to-end dataset over a correlated synthetic table."""
    rng = np.random.default_rng(seed)
    table = make_correlated_table(
        "facts", num_rows, num_column_pairs=num_column_pairs,
        correlation=correlation, seed=int(rng.integers(2 ** 31)),
    )
    columns = sorted(table.columns)
    queries = generate_workload(
        table, num_queries, columns=columns,
        seed=int(rng.integers(2 ** 31)),
    )
    features = featurize(table, queries, column_order=columns)
    labels = np.array([
        math.log1p(true_range_cardinality(table, q.predicates))
        for q in queries
    ])
    return CardinalityDataset(
        table=table, queries=queries, features=features,
        log_cardinalities=labels, column_order=columns,
    )


def histogram_estimates(dataset: CardinalityDataset,
                        num_buckets: int = 32) -> np.ndarray:
    """Classical per-column histogram estimator (independence
    assumption) over the dataset's queries."""
    catalog = Catalog(num_histogram_buckets=num_buckets)
    catalog.add_table(dataset.table)
    return np.array([
        estimate_range_cardinality(
            catalog, dataset.table.name, query.predicates
        )
        for query in dataset.queries
    ])


def evaluate_q_errors(estimates: np.ndarray,
                      truths: np.ndarray) -> Dict[str, float]:
    """Median / p90 / max q-error summary of an estimator."""
    estimates = np.asarray(estimates, dtype=float).reshape(-1)
    truths = np.asarray(truths, dtype=float).reshape(-1)
    if estimates.size != truths.size:
        raise ValueError("estimates and truths must align")
    errors = np.array([
        q_error(est, true) for est, true in zip(estimates, truths)
    ])
    return {
        "median": float(np.median(errors)),
        "p90": float(np.percentile(errors, 90)),
        "max": float(errors.max()),
        "mean": float(errors.mean()),
    }
