"""Reinforcement-learning join ordering (tabular Q-learning).

The tutorial's "new techniques" thread: instead of enumerating plans,
*learn* to build them. A left-deep join order is an episode: the state
is the set of already-joined relations, an action appends one more
relation, and the per-step reward is the negative log-cardinality of
the new intermediate result — so the return of an episode is exactly
the negative log-cost proxy that the QUBO formulation minimizes,
making all three optimizer families (exact, annealed, learned)
directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .cost import left_deep_cost
from .query import JoinGraph

State = FrozenSet[int]


@dataclass
class TrainingRecord:
    """Per-episode diagnostics."""

    episode: int
    order: List[int]
    cost: float
    epsilon: float


class QLearningJoinOptimizer:
    """Tabular Q-learning over left-deep join-order construction.

    Parameters
    ----------
    graph:
        The join graph to optimize (the agent trains per-query, the
        standard setup of the learned-optimizer literature's simplest
        baseline).
    episodes:
        Training episodes.
    learning_rate, discount:
        Q-learning update parameters. ``discount=1.0`` is appropriate:
        episodes are short and the objective is the undiscounted
        episode return.
    epsilon_start, epsilon_end:
        Linear exploration schedule.
    """

    def __init__(self, graph: JoinGraph, episodes: int = 1500,
                 learning_rate: float = 0.2, discount: float = 1.0,
                 epsilon_start: float = 1.0, epsilon_end: float = 0.05,
                 seed: Optional[int] = 0):
        if episodes < 1:
            raise ValueError("episodes must be positive")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 <= epsilon_end <= epsilon_start <= 1:
            raise ValueError("need 0 <= epsilon_end <= epsilon_start <= 1")
        self.graph = graph
        self.episodes = episodes
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self._rng = np.random.default_rng(seed)
        self._q: Dict[Tuple[State, int], float] = {}
        self.history: List[TrainingRecord] = []
        self._trained = False

    # ------------------------------------------------------------------
    def _reward(self, prefix: Sequence[int], action: int) -> float:
        """Negative log-cardinality of the new intermediate result.

        The first relation is free (scanning a base table is not
        charged by C_out either).
        """
        if not prefix:
            return 0.0
        size = self.graph.subset_cardinality([*prefix, action])
        return -math.log(max(size, 1e-300))

    def _q_value(self, state: State, action: int) -> float:
        return self._q.get((state, action), 0.0)

    def _best_action(self, state: State,
                     available: Sequence[int]) -> int:
        values = [self._q_value(state, a) for a in available]
        best = max(values)
        top = [a for a, v in zip(available, values) if v == best]
        return int(top[self._rng.integers(len(top))])

    def _epsilon(self, episode: int) -> float:
        if self.episodes == 1:
            return self.epsilon_end
        fraction = episode / (self.episodes - 1)
        return (self.epsilon_start
                + fraction * (self.epsilon_end - self.epsilon_start))

    # ------------------------------------------------------------------
    def train(self) -> "QLearningJoinOptimizer":
        """Run the training episodes (idempotent: call once)."""
        n = self.graph.num_relations
        for episode in range(self.episodes):
            epsilon = self._epsilon(episode)
            prefix: List[int] = []
            state: State = frozenset()
            while len(prefix) < n:
                available = [r for r in range(n) if r not in state]
                if self._rng.random() < epsilon:
                    action = int(available[
                        self._rng.integers(len(available))
                    ])
                else:
                    action = self._best_action(state, available)
                reward = self._reward(prefix, action)
                next_state = state | {action}
                next_available = [r for r in range(n)
                                  if r not in next_state]
                future = 0.0
                if next_available:
                    future = max(
                        self._q_value(next_state, a)
                        for a in next_available
                    )
                key = (state, action)
                old = self._q_value(state, action)
                self._q[key] = old + self.learning_rate * (
                    reward + self.discount * future - old
                )
                prefix.append(action)
                state = next_state
            self.history.append(TrainingRecord(
                episode=episode,
                order=list(prefix),
                cost=left_deep_cost(self.graph, prefix),
                epsilon=epsilon,
            ))
        self._trained = True
        return self

    def best_order(self) -> List[int]:
        """Greedy rollout of the learned policy (no exploration)."""
        if not self._trained:
            raise RuntimeError("call train() first")
        n = self.graph.num_relations
        prefix: List[int] = []
        state: State = frozenset()
        while len(prefix) < n:
            available = [r for r in range(n) if r not in state]
            action = self._best_action(state, available)
            prefix.append(action)
            state = state | {action}
        return prefix

    def best_cost(self) -> float:
        """C_out of the learned policy's plan."""
        return left_deep_cost(self.graph, self.best_order())

    def learning_curve(self, window: int = 20) -> List[float]:
        """Rolling geometric-mean episode cost (for convergence plots)."""
        if not self.history:
            raise RuntimeError("call train() first")
        costs = [record.cost for record in self.history]
        out: List[float] = []
        for i in range(len(costs)):
            chunk = costs[max(0, i - window + 1): i + 1]
            logs = [math.log(max(c, 1e-300)) for c in chunk]
            out.append(math.exp(sum(logs) / len(logs)))
        return out


def solve_join_order_rl(graph: JoinGraph, episodes: int = 1500,
                        seed: Optional[int] = 0
                        ) -> Tuple[List[int], float]:
    """One-call wrapper: train a Q-learner, return (order, cost)."""
    optimizer = QLearningJoinOptimizer(graph, episodes=episodes,
                                       seed=seed)
    optimizer.train()
    return optimizer.best_order(), optimizer.best_cost()
