"""Join cost model (C_out) and selectivity estimation.

``C_out`` charges each join node the estimated cardinality of its
output — the standard cost model of the join-ordering literature and
of every quantum join-ordering paper this library reproduces. It
rewards plans that keep intermediate results small.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from .catalog import Catalog
from .query import JoinGraph, JoinTree, left_deep_tree


def tree_cost(graph: JoinGraph, tree: JoinTree) -> float:
    """C_out: sum of estimated output sizes over all join nodes."""
    if tree.relations != frozenset(range(graph.num_relations)):
        raise ValueError("tree must join exactly the graph's relations")
    return sum(
        graph.subset_cardinality(node.relations)
        for node in tree.inner_nodes()
    )


def left_deep_cost(graph: JoinGraph, order: Sequence[int]) -> float:
    """C_out of the left-deep tree for a relation permutation."""
    if sorted(order) != list(range(graph.num_relations)):
        raise ValueError("order must be a permutation of all relations")
    return tree_cost(graph, left_deep_tree(order))


def log_cost_proxy(graph: JoinGraph, order: Sequence[int]) -> float:
    """Sum of log-cardinalities of all left-deep prefixes.

    This is the quadratic-friendly objective the join-order QUBO
    minimizes: ``sum_p log |prefix_p|`` = log of the *product* of
    intermediate sizes. It shares its optima with C_out in the common
    case where one join dominates, and is exactly representable with
    one-hot position variables (see :mod:`repro.db.joinorder`).
    """
    if sorted(order) != list(range(graph.num_relations)):
        raise ValueError("order must be a permutation of all relations")
    total = 0.0
    for prefix_len in range(2, graph.num_relations + 1):
        prefix = order[:prefix_len]
        total += math.log(max(graph.subset_cardinality(prefix), 1e-300))
    return total


def selectivity_from_stats(catalog: Catalog, left: Tuple[str, str],
                           right: Tuple[str, str]) -> float:
    """Equi-join selectivity estimate ``1 / max(ndv_left, ndv_right)``.

    The textbook System-R estimator, driven by the catalog's distinct
    counts. ``left`` / ``right`` are (table, column) pairs.
    """
    ndv_left = catalog.stats(*left).num_distinct
    ndv_right = catalog.stats(*right).num_distinct
    denominator = max(ndv_left, ndv_right)
    if denominator < 1:
        return 1.0
    return 1.0 / denominator


def estimate_range_selectivity(catalog: Catalog, table: str,
                               predicates: Dict[str, Tuple[float, float]]
                               ) -> float:
    """Conjunctive range selectivity under attribute independence.

    Multiplies per-column histogram selectivities — the classical
    estimator whose failure on correlated data motivates learned
    cardinality estimation (experiment E13).
    """
    selectivity = 1.0
    for column, (low, high) in predicates.items():
        selectivity *= catalog.stats(table, column).selectivity_range(
            low, high
        )
    return selectivity


def estimate_range_cardinality(catalog: Catalog, table: str,
                               predicates: Dict[str, Tuple[float, float]]
                               ) -> float:
    """Estimated qualifying row count for conjunctive range predicates."""
    return catalog.row_count(table) * estimate_range_selectivity(
        catalog, table, predicates
    )


def q_error(estimate: float, truth: float) -> float:
    """The symmetric ratio error used throughout the cardinality-
    estimation literature: ``max(est/true, true/est)`` with both sides
    floored at 1 row."""
    estimate = max(float(estimate), 1.0)
    truth = max(float(truth), 1.0)
    return max(estimate / truth, truth / estimate)
