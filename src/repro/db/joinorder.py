"""Join-order optimization: exact DP, greedy, and the QUBO route.

Three optimizers over a :class:`~repro.db.query.JoinGraph`:

* :func:`dp_optimal` — textbook dynamic programming over relation
  subsets (bushy or left-deep), the exact-but-exponential baseline.
* :func:`greedy_goo` — Greedy Operator Ordering, the polynomial
  heuristic baseline.
* :class:`JoinOrderQUBO` — the quantum-annealing formulation: one-hot
  (relation, position) variables for a left-deep order, with the
  quadratic log-cost proxy objective (sum of log prefix cardinalities)
  and analytic penalty weights. Solvable by any solver in
  :mod:`repro.annealing`, reproducing the encoding strategy of the
  quantum join-ordering literature (experiment E8).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..annealing.qubo import QUBO
from ..compile import (
    CompiledProblem,
    ProblemBuilder,
    SolverConfig,
    analytic_penalty_weight,
    check_bits,
    validate_penalty_scale,
)
from ..compile import solve as dispatch_solve
from .cost import left_deep_cost, log_cost_proxy, tree_cost
from .query import JoinGraph, JoinTree


# ----------------------------------------------------------------------
# Exact dynamic programming
# ----------------------------------------------------------------------
def dp_optimal(graph: JoinGraph, bushy: bool = True,
               avoid_cross_products: bool = True
               ) -> Tuple[JoinTree, float]:
    """Optimal join tree under C_out by DP over subsets.

    ``bushy=False`` restricts to left-deep trees (one side of every
    join is a base relation). ``avoid_cross_products`` only considers
    connected splits when the graph itself is connected, matching
    standard optimizer behaviour; it falls back to allowing cross
    products when necessary.
    """
    n = graph.num_relations
    full = (1 << n) - 1
    cardinality: Dict[int, float] = {}
    for mask in range(1, full + 1):
        cardinality[mask] = graph.subset_cardinality(_bits(mask))

    best_cost: Dict[int, float] = {}
    best_plan: Dict[int, JoinTree] = {}
    for r in range(n):
        best_cost[1 << r] = 0.0
        best_plan[1 << r] = JoinTree.leaf(r)

    masks_by_size: Dict[int, List[int]] = {}
    for mask in range(1, full + 1):
        masks_by_size.setdefault(bin(mask).count("1"), []).append(mask)

    for size in range(2, n + 1):
        for mask in masks_by_size[size]:
            candidates = _splits(mask, bushy)
            chosen = _best_split(
                graph, mask, candidates, best_cost, cardinality,
                avoid_cross_products,
            )
            if chosen is None:
                # No connected split; retry allowing cross products.
                chosen = _best_split(
                    graph, mask, _splits(mask, bushy), best_cost,
                    cardinality, avoid_cross=False,
                )
            left_mask, right_mask, cost = chosen
            best_cost[mask] = cost
            best_plan[mask] = JoinTree.join(
                best_plan[left_mask], best_plan[right_mask]
            )
    return best_plan[full], best_cost[full]


def _best_split(graph: JoinGraph, mask: int, candidates, best_cost,
                cardinality, avoid_cross: bool
                ) -> Optional[Tuple[int, int, float]]:
    out: Optional[Tuple[int, int, float]] = None
    for left_mask, right_mask in candidates:
        if left_mask not in best_cost or right_mask not in best_cost:
            continue
        if avoid_cross and not _connected_split(graph, left_mask,
                                                right_mask):
            continue
        cost = (best_cost[left_mask] + best_cost[right_mask]
                + cardinality[mask])
        if out is None or cost < out[2]:
            out = (left_mask, right_mask, cost)
    return out


def _splits(mask: int, bushy: bool):
    """Yield (left, right) submask pairs partitioning mask."""
    if bushy:
        # Enumerate proper non-empty submasks; canonicalize by keeping
        # the lowest set bit on the left to halve the work.
        lowest = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            if sub & lowest:
                yield sub, mask ^ sub
            sub = (sub - 1) & mask
    else:
        for r in _bits(mask):
            right = 1 << r
            left = mask ^ right
            if left:
                yield left, right


def _connected_split(graph: JoinGraph, left_mask: int,
                     right_mask: int) -> bool:
    left = _bits(left_mask)
    right = _bits(right_mask)
    return any(
        graph.selectivities.get((min(a, b), max(a, b))) is not None
        for a in left for b in right
    )


def _bits(mask: int) -> List[int]:
    out = []
    position = 0
    while mask:
        if mask & 1:
            out.append(position)
        mask >>= 1
        position += 1
    return out


# ----------------------------------------------------------------------
# Greedy Operator Ordering
# ----------------------------------------------------------------------
def greedy_goo(graph: JoinGraph) -> Tuple[JoinTree, float]:
    """Greedy Operator Ordering: repeatedly join the pair of current
    trees whose result is smallest. O(n^3); a strong practical
    baseline that the QUBO route must beat on adversarial topologies.
    """
    forest: List[JoinTree] = [
        JoinTree.leaf(r) for r in range(graph.num_relations)
    ]
    while len(forest) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best_size = math.inf
        for i in range(len(forest)):
            for j in range(i + 1, len(forest)):
                merged = forest[i].relations | forest[j].relations
                size = graph.subset_cardinality(merged)
                if size < best_size:
                    best_size = size
                    best_pair = (i, j)
        i, j = best_pair
        joined = JoinTree.join(forest[i], forest[j])
        forest = [t for k, t in enumerate(forest) if k not in (i, j)]
        forest.append(joined)
    tree = forest[0]
    return tree, tree_cost(graph, tree)


# ----------------------------------------------------------------------
# QUBO formulation
# ----------------------------------------------------------------------
@dataclass
class JoinOrderDecoded:
    """Decoded annealer output for one join-order instance."""

    order: List[int]
    cost: float
    log_proxy: float
    valid: bool  # True if no one-hot repair was needed


class JoinOrderQUBO:
    """Left-deep join ordering as a QUBO over one-hot position bits.

    Variable ``x[r, p]`` = 1 iff relation ``r`` sits at position ``p``.
    With prefix indicators ``y[r, p] = sum_{p' <= p} x[r, p']`` the
    objective

        sum_{p >= 1} log |prefix_p|
        = sum_p ( sum_r log(card_r) y[r, p]
                  + sum_{(a, b) in E} log(sel_ab) y[a, p] y[b, p] )

    is exactly quadratic in ``x``. One-hot constraints (each position
    one relation, each relation one position) are added as penalties
    with an analytic weight exceeding the objective's total range, so
    the penalized ground state is always a valid permutation.

    Parameters
    ----------
    penalty_scale:
        Multiplier on the analytic penalty weight (ablation knob; 1.0
        is the safe default, values < 1 may produce invalid encodings
        that the decoder must repair).
    """

    def __init__(self, graph: JoinGraph, penalty_scale: float = 1.0):
        self.graph = graph
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        self.num_relations = graph.num_relations
        self.num_variables = self.num_relations ** 2
        self._compiled: Optional[CompiledProblem] = None

    # -- variable numbering --------------------------------------------
    def variable(self, relation: int, position: int) -> int:
        """Flat variable index of ``x[relation, position]``."""
        n = self.num_relations
        if not (0 <= relation < n and 0 <= position < n):
            raise ValueError("relation/position out of range")
        return relation * n + position

    # -- build ----------------------------------------------------------
    def compile(self) -> CompiledProblem:
        """Lower the formulation to the shared IR (cached)."""
        if self._compiled is not None:
            return self._compiled
        n = self.num_relations
        builder = ProblemBuilder("join_order",
                                 penalty_scale=self.penalty_scale)
        for r in range(n):
            for p in range(n):
                builder.add_variable("x", r, p)

        log_card = [math.log(c) for c in self.graph.cardinalities]
        # Linear part: x[r, p'] contributes log(card_r) to every prefix
        # p >= max(p', 1); there are n - max(p', 1) such prefixes.
        for r in range(n):
            for p_prime in range(n):
                count = n - max(p_prime, 1)
                if count > 0:
                    builder.add_linear(
                        self.variable(r, p_prime), log_card[r] * count
                    )
        # Quadratic part: x[a, p1] * x[b, p2] contributes log(sel_ab)
        # once per prefix p >= max(p1, p2, 1).
        for (a, b), sel in self.graph.selectivities.items():
            log_sel = math.log(sel)
            for p1 in range(n):
                for p2 in range(n):
                    count = n - max(p1, p2, 1)
                    if count > 0:
                        builder.add_quadratic(
                            self.variable(a, p1), self.variable(b, p2),
                            log_sel * count,
                        )

        weight = self.penalty_weight()
        for p in range(n):
            builder.exactly_one(
                [self.variable(r, p) for r in range(n)], weight
            )
        for r in range(n):
            builder.exactly_one(
                [self.variable(r, p) for p in range(n)], weight
            )
        self._compiled = builder.finish(
            decode=self.decode,
            score=lambda decoded: decoded.cost,
            feasible=lambda decoded: (
                sorted(decoded.order) == list(range(n))
            ),
            metadata={"penalty_weight": weight,
                      "num_relations": n},
        )
        return self._compiled

    def build(self) -> QUBO:
        """Construct (and cache) the QUBO."""
        return self.compile().model

    def penalty_weight(self) -> float:
        """Analytic one-hot penalty: exceeds the objective's range.

        Upper bound on the objective spread: every prefix can contribute
        at most ``sum_r |log card_r| + sum_e |log sel_e|``, over at most
        ``n - 1`` prefixes.
        """
        span = (sum(abs(math.log(c)) for c in self.graph.cardinalities)
                + sum(abs(math.log(s))
                      for s in self.graph.selectivities.values()))
        return analytic_penalty_weight((self.num_relations - 1) * span,
                                       self.penalty_scale)

    # -- decode ----------------------------------------------------------
    def decode(self, bits: Sequence[int]) -> JoinOrderDecoded:
        """Bits -> join order, repairing broken one-hots greedily.

        Positions are scanned left to right; each takes its uniquely
        assigned relation when the encoding is valid, otherwise the
        lowest-index unused relation among those set (or unused overall).
        """
        bits = check_bits(bits, self.num_variables)
        n = self.num_relations
        matrix = bits.reshape(n, n)  # [relation, position]
        valid = (
            (matrix.sum(axis=0) == 1).all()
            and (matrix.sum(axis=1) == 1).all()
        )
        order: List[int] = []
        used = set()
        for p in range(n):
            assigned = [r for r in range(n)
                        if matrix[r, p] == 1 and r not in used]
            if len(assigned) >= 1:
                choice = assigned[0]
            else:
                choice = next(r for r in range(n) if r not in used)
            order.append(choice)
            used.add(choice)
        cost = left_deep_cost(self.graph, order)
        proxy = log_cost_proxy(self.graph, order)
        return JoinOrderDecoded(order=order, cost=cost, log_proxy=proxy,
                                valid=bool(valid))

    def encode_order(self, order: Sequence[int]) -> np.ndarray:
        """Permutation -> one-hot bit vector (for tests/analysis)."""
        if sorted(order) != list(range(self.num_relations)):
            raise ValueError("order must be a permutation")
        bits = np.zeros(self.num_variables, dtype=int)
        for p, r in enumerate(order):
            bits[self.variable(r, p)] = 1
        return bits


#: Default dispatch configuration of :func:`solve_join_order_annealing`.
DEFAULT_SOLVER_CONFIG = SolverConfig(num_sweeps=300, num_reads=20, seed=0)


def solve_join_order_annealing(graph: JoinGraph, solver=None,
                               penalty_scale: float = 1.0,
                               polish: bool = True,
                               config: Optional[SolverConfig] = None
                               ) -> JoinOrderDecoded:
    """End-to-end: compile the QUBO, dispatch a solver, decode the best
    read.

    ``solver`` is a registry name (``"sa"``, ``"sqa"``, ...) or a
    pre-configured solver instance; ``None`` means simulated
    annealing. Registry names with no explicit ``config`` run at the
    deterministic :data:`DEFAULT_SOLVER_CONFIG`. ``polish`` runs a
    classical pairwise-swap hill climb on the decoded order — the standard
    hybrid refinement step: single-bit-flip annealers move between
    permutations only through 4-bit flips, so a cheap 2-opt pass
    recovers the last few percent (and occasionally a stuck read) at
    negligible cost.
    """
    problem = JoinOrderQUBO(graph, penalty_scale=penalty_scale).compile()
    if solver is None:
        solver = "sa"
    if isinstance(solver, str) and config is None:
        config = DEFAULT_SOLVER_CONFIG
    result = dispatch_solve(problem, solver=solver, config=config)
    best: JoinOrderDecoded = result.solution
    if polish:
        order = two_opt_polish(graph, best.order)
        best = JoinOrderDecoded(
            order=order,
            cost=left_deep_cost(graph, order),
            log_proxy=log_cost_proxy(graph, order),
            valid=best.valid,
        )
    return best


def two_opt_polish(graph: JoinGraph, order: Sequence[int]) -> List[int]:
    """Hill-climb on C_out by swapping pairs of positions to a local
    optimum. O(n^2) swaps per pass, few passes in practice."""
    current = list(order)
    current_cost = left_deep_cost(graph, current)
    improved = True
    while improved:
        improved = False
        n = len(current)
        for i in range(n):
            for j in range(i + 1, n):
                candidate = list(current)
                candidate[i], candidate[j] = candidate[j], candidate[i]
                cost = left_deep_cost(graph, candidate)
                if cost < current_cost - 1e-12:
                    current, current_cost = candidate, cost
                    improved = True
    return current


def exhaustive_left_deep(graph: JoinGraph) -> Tuple[List[int], float]:
    """Brute-force best left-deep order (testing; factorial time)."""
    best_order: Optional[List[int]] = None
    best_cost = math.inf
    for order in itertools.permutations(range(graph.num_relations)):
        cost = left_deep_cost(graph, order)
        if cost < best_cost:
            best_cost = cost
            best_order = list(order)
    return best_order, best_cost


def solve_join_order_grover(graph: JoinGraph, seed: Optional[int] = None
                            ) -> Tuple[List[int], float]:
    """Join ordering by Grover minimum search over all left-deep plans.

    The tutorial's other quantum route: treat the plan space as an
    unstructured database and apply Durr-Hoyer minimum finding, which
    needs only O(sqrt(n!)) oracle calls instead of n!. Simulating the
    oracle classically still costs n! cost evaluations up front, so
    this is a faithful *circuit-level* demonstration rather than a
    speedup — practical only for small n (<= 6 here).
    """
    from ..quantum.grover import grover_minimum_search

    if graph.num_relations > 6:
        raise ValueError(
            "Grover-search demonstration is limited to 6 relations "
            "(the simulated oracle enumerates all n! plans)"
        )
    orders = list(itertools.permutations(range(graph.num_relations)))
    costs = [left_deep_cost(graph, order) for order in orders]
    winner = grover_minimum_search(costs, seed=seed)
    return list(orders[winner]), costs[winner]
