"""Relational catalog: tables, columns and optimizer statistics.

A deliberately small but real substrate: tables hold actual numpy
column data, and the catalog derives the statistics (row counts,
distinct counts, min/max, equi-width histograms) that the cost model
in :mod:`repro.db.cost` consumes — the same separation a production
optimizer has between data and metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np


@dataclass
class ColumnStats:
    """Optimizer statistics for one column."""

    num_distinct: int
    min_value: float
    max_value: float
    histogram_bounds: np.ndarray
    histogram_counts: np.ndarray

    def selectivity_range(self, low: float, high: float) -> float:
        """Estimated fraction of rows with value in [low, high].

        Uses the equi-width histogram with linear interpolation inside
        partially covered buckets.
        """
        if high < low:
            return 0.0
        total = float(self.histogram_counts.sum())
        if total == 0:
            return 0.0
        bounds = self.histogram_bounds
        covered = 0.0
        for b in range(self.histogram_counts.size):
            lo_b, hi_b = bounds[b], bounds[b + 1]
            width = hi_b - lo_b
            overlap_lo = max(low, lo_b)
            overlap_hi = min(high, hi_b)
            if overlap_hi <= overlap_lo or width <= 0:
                # Degenerate bucket: count it fully if the point is in.
                if width <= 0 and low <= lo_b <= high:
                    covered += float(self.histogram_counts[b])
                continue
            fraction = (overlap_hi - overlap_lo) / width
            covered += fraction * float(self.histogram_counts[b])
        return min(1.0, covered / total)

    def selectivity_equals(self) -> float:
        """Estimated fraction matching one value (uniformity assumption)."""
        if self.num_distinct == 0:
            return 0.0
        return 1.0 / self.num_distinct


class Table:
    """A named table backed by numpy columns of equal length."""

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]):
        if not name:
            raise ValueError("table name must be non-empty")
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {np.asarray(v).shape[0] for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError("all columns must have the same length")
        self.name = name
        self.columns: Dict[str, np.ndarray] = {
            col: np.asarray(values) for col, values in columns.items()
        }
        self.num_rows = lengths.pop()

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}")
        return self.columns[name]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self.num_rows}, "
            f"columns={sorted(self.columns)})"
        )


class Catalog:
    """A set of tables plus derived statistics, addressable by name."""

    def __init__(self, num_histogram_buckets: int = 32):
        if num_histogram_buckets < 1:
            raise ValueError("need at least one histogram bucket")
        self.num_histogram_buckets = num_histogram_buckets
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[Tuple[str, str], ColumnStats] = {}

    def add_table(self, table: Table) -> "Catalog":
        """Register a table and analyze all its columns."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        for column_name, values in table.columns.items():
            self._stats[(table.name, column_name)] = self._analyze(values)
        return self

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(f"unknown table {name!r}")
        return self._tables[name]

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def row_count(self, table_name: str) -> int:
        return self.table(table_name).num_rows

    def stats(self, table_name: str, column_name: str) -> ColumnStats:
        key = (table_name, column_name)
        if key not in self._stats:
            raise KeyError(f"no statistics for {table_name}.{column_name}")
        return self._stats[key]

    def _analyze(self, values: np.ndarray) -> ColumnStats:
        data = np.asarray(values, dtype=float)
        lo = float(data.min())
        hi = float(data.max())
        buckets = self.num_histogram_buckets
        if hi == lo:
            bounds = np.array([lo, hi])
            counts = np.array([data.size], dtype=float)
        else:
            counts, bounds = np.histogram(data, bins=buckets,
                                          range=(lo, hi))
        return ColumnStats(
            num_distinct=int(np.unique(data).size),
            min_value=lo,
            max_value=hi,
            histogram_bounds=np.asarray(bounds, dtype=float),
            histogram_counts=np.asarray(counts, dtype=float),
        )

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names})"
