"""A miniature join executor over catalog tables.

Executes :class:`~repro.db.query.JoinTree` plans with hash equi-joins
on real numpy column data, so optimizer output can be *run*, not just
costed — and so the cost model's cardinality estimates can be validated
against actual intermediate result sizes.

Intermediates are represented as row-id vectors per base table (a
"rowid join"), which keeps execution allocation-light: materializing
column values happens only on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from .. import telemetry
from .catalog import Catalog
from .cost import selectivity_from_stats
from .query import JoinGraph, JoinTree


@dataclass(frozen=True)
class EquiJoinPredicate:
    """``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str


@dataclass
class PhysicalQuery:
    """A join query bound to catalog tables.

    ``tables`` fixes the relation numbering (relation i = tables[i]),
    which is how logical :class:`JoinGraph` relations map to physical
    tables.
    """

    catalog: Catalog
    tables: List[str]
    predicates: List[EquiJoinPredicate] = field(default_factory=list)

    def __post_init__(self):
        if len(set(self.tables)) != len(self.tables):
            raise ValueError(
                "self-joins need aliases; duplicate table names given"
            )
        for table in self.tables:
            self.catalog.table(table)  # raises on unknown
        for predicate in self.predicates:
            for table, column in (
                (predicate.left_table, predicate.left_column),
                (predicate.right_table, predicate.right_column),
            ):
                if table not in self.tables:
                    raise ValueError(f"predicate references {table!r} "
                                     "which is not in the query")
                self.catalog.table(table).column(column)

    def relation_index(self, table: str) -> int:
        return self.tables.index(table)

    def to_join_graph(self) -> JoinGraph:
        """Estimate a logical join graph from catalog statistics.

        Cardinalities come from row counts; selectivities from the
        System-R ``1 / max(ndv)`` estimator, multiplying when several
        predicates link the same table pair.
        """
        cardinalities = [
            float(self.catalog.row_count(t)) for t in self.tables
        ]
        selectivities: Dict[Tuple[int, int], float] = {}
        for predicate in self.predicates:
            a = self.relation_index(predicate.left_table)
            b = self.relation_index(predicate.right_table)
            key = (min(a, b), max(a, b))
            estimate = selectivity_from_stats(
                self.catalog,
                (predicate.left_table, predicate.left_column),
                (predicate.right_table, predicate.right_column),
            )
            selectivities[key] = selectivities.get(key, 1.0) * estimate
        return JoinGraph(cardinalities, selectivities,
                         names=list(self.tables))


@dataclass
class ExecutionResult:
    """Outcome of running a plan: final size and per-node actuals."""

    row_count: int
    intermediate_sizes: Dict[frozenset, int]
    actual_cost: float  # sum of intermediate sizes (C_out, measured)


class HashJoinExecutor:
    """Executes join trees bottom-up with hash equi-joins."""

    def __init__(self, query: PhysicalQuery):
        self.query = query
        self._predicates_by_pair: Dict[Tuple[int, int],
                                       List[EquiJoinPredicate]] = {}
        for predicate in query.predicates:
            a = query.relation_index(predicate.left_table)
            b = query.relation_index(predicate.right_table)
            key = (min(a, b), max(a, b))
            self._predicates_by_pair.setdefault(key, []).append(predicate)

    # ------------------------------------------------------------------
    def execute(self, tree: JoinTree,
                max_intermediate_rows: int = 5_000_000) -> ExecutionResult:
        """Run the plan; raises if a cross product would explode."""
        sizes: Dict[frozenset, int] = {}
        with telemetry.span("db.executor.execute"):
            rowids = self._execute_node(tree, sizes, max_intermediate_rows)
        count = _result_length(rowids)
        actual_cost = float(sum(
            size for relations, size in sizes.items() if len(relations) > 1
        ))
        collector = telemetry.get_collector()
        if collector is not None:
            collector.count("db.plans_executed")
            collector.count(
                "db.joins",
                sum(1 for relations in sizes if len(relations) > 1),
            )
            collector.count("db.intermediate_rows", int(actual_cost))
            collector.count("db.output_rows", count)
        return ExecutionResult(
            row_count=count,
            intermediate_sizes=sizes,
            actual_cost=actual_cost,
        )

    def _execute_node(self, node: JoinTree, sizes: Dict[frozenset, int],
                      limit: int) -> Dict[int, np.ndarray]:
        if node.is_leaf:
            relation = next(iter(node.relations))
            table = self.query.tables[relation]
            count = self.query.catalog.row_count(table)
            rowids = {relation: np.arange(count)}
            sizes[frozenset(node.relations)] = count
            return rowids
        left = self._execute_node(node.left, sizes, limit)
        right = self._execute_node(node.right, sizes, limit)
        joined = self._join(left, right, node, limit)
        sizes[frozenset(node.relations)] = _result_length(joined)
        return joined

    def _join(self, left: Dict[int, np.ndarray],
              right: Dict[int, np.ndarray], node: JoinTree,
              limit: int) -> Dict[int, np.ndarray]:
        predicates = self._applicable_predicates(
            set(left), set(right)
        )
        if not predicates:
            return self._cross_product(left, right, limit)
        first, *rest = predicates
        joined = self._hash_join(left, right, first)
        for predicate in rest:
            joined = self._filter_predicate(joined, predicate)
        if _result_length(joined) > limit:
            raise RuntimeError("intermediate result exceeds limit")
        return joined

    def _applicable_predicates(self, left_relations, right_relations
                               ) -> List[EquiJoinPredicate]:
        out: List[EquiJoinPredicate] = []
        for (a, b), predicates in self._predicates_by_pair.items():
            if ((a in left_relations and b in right_relations)
                    or (b in left_relations and a in right_relations)):
                out.extend(predicates)
        return out

    def _column_values(self, rowids: Dict[int, np.ndarray],
                       table: str, column: str) -> np.ndarray:
        relation = self.query.relation_index(table)
        base = self.query.catalog.table(table).column(column)
        return base[rowids[relation]]

    def _hash_join(self, left: Dict[int, np.ndarray],
                   right: Dict[int, np.ndarray],
                   predicate: EquiJoinPredicate) -> Dict[int, np.ndarray]:
        left_relations = set(left)
        if self.query.relation_index(predicate.left_table) in left_relations:
            build_side, probe_side = left, right
            build_key = (predicate.left_table, predicate.left_column)
            probe_key = (predicate.right_table, predicate.right_column)
        else:
            build_side, probe_side = left, right
            build_key = (predicate.right_table, predicate.right_column)
            probe_key = (predicate.left_table, predicate.left_column)

        build_values = self._column_values(build_side, *build_key)
        probe_values = self._column_values(probe_side, *probe_key)

        table: Dict[float, List[int]] = {}
        for position, value in enumerate(build_values):
            table.setdefault(float(value), []).append(position)

        build_positions: List[int] = []
        probe_positions: List[int] = []
        for position, value in enumerate(probe_values):
            for match in table.get(float(value), ()):
                build_positions.append(match)
                probe_positions.append(position)

        build_index = np.asarray(build_positions, dtype=int)
        probe_index = np.asarray(probe_positions, dtype=int)
        joined: Dict[int, np.ndarray] = {}
        for relation, ids in build_side.items():
            joined[relation] = ids[build_index]
        for relation, ids in probe_side.items():
            joined[relation] = ids[probe_index]
        return joined

    def _filter_predicate(self, rowids: Dict[int, np.ndarray],
                          predicate: EquiJoinPredicate
                          ) -> Dict[int, np.ndarray]:
        left_values = self._column_values(
            rowids, predicate.left_table, predicate.left_column
        )
        right_values = self._column_values(
            rowids, predicate.right_table, predicate.right_column
        )
        mask = left_values == right_values
        return {relation: ids[mask] for relation, ids in rowids.items()}

    def _cross_product(self, left: Dict[int, np.ndarray],
                       right: Dict[int, np.ndarray],
                       limit: int) -> Dict[int, np.ndarray]:
        n_left = _result_length(left)
        n_right = _result_length(right)
        if n_left * n_right > limit:
            raise RuntimeError(
                f"cross product of {n_left} x {n_right} rows exceeds "
                f"the {limit}-row limit"
            )
        left_index = np.repeat(np.arange(n_left), n_right)
        right_index = np.tile(np.arange(n_right), n_left)
        joined: Dict[int, np.ndarray] = {}
        for relation, ids in left.items():
            joined[relation] = ids[left_index]
        for relation, ids in right.items():
            joined[relation] = ids[right_index]
        return joined


def _result_length(rowids: Mapping[int, np.ndarray]) -> int:
    lengths = {ids.shape[0] for ids in rowids.values()}
    if len(lengths) != 1:
        raise RuntimeError("internal: ragged rowid vectors")
    return lengths.pop()


def validate_cost_model(query: PhysicalQuery, tree: JoinTree
                        ) -> List[Dict[str, float]]:
    """Estimated vs actual cardinality for every join node of a plan.

    Returns one record per inner node with the estimator's q-error —
    the executor-level ground truth for experiment-style analyses.
    """
    from .cost import q_error

    graph = query.to_join_graph()
    result = HashJoinExecutor(query).execute(tree)
    records: List[Dict[str, float]] = []
    for node in tree.inner_nodes():
        key = frozenset(node.relations)
        actual = result.intermediate_sizes[key]
        estimate = graph.subset_cardinality(node.relations)
        records.append({
            "num_relations": float(len(node.relations)),
            "estimated": float(estimate),
            "actual": float(actual),
            "q_error": q_error(estimate, actual),
        })
    return records
