"""Synthetic relational data generators.

Produces the skewed, correlated data that makes learned cardinality
estimation (experiment E13) non-trivial, plus a small star schema for
end-to-end examples. All generators are seeded and pure numpy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .catalog import Catalog, Table


def zipf_column(num_rows: int, num_values: int, skew: float = 1.2,
                seed: Optional[int] = None) -> np.ndarray:
    """Integer column with a (truncated) Zipf frequency distribution.

    ``skew`` > 0; larger means heavier head. Values are 0..num_values-1
    with value 0 the most frequent.
    """
    if num_rows < 1 or num_values < 1:
        raise ValueError("num_rows and num_values must be positive")
    if skew <= 0:
        raise ValueError("skew must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_values + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(num_values, size=num_rows, p=weights)


def correlated_columns(num_rows: int, correlation: float = 0.8,
                       seed: Optional[int] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Two standard-normal columns with the given Pearson correlation."""
    if not -1.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [-1, 1]")
    rng = np.random.default_rng(seed)
    base = rng.normal(size=num_rows)
    independent = rng.normal(size=num_rows)
    partner = (correlation * base
               + np.sqrt(max(0.0, 1.0 - correlation ** 2)) * independent)
    return base, partner


def make_correlated_table(name: str, num_rows: int,
                          num_column_pairs: int = 2,
                          correlation: float = 0.8,
                          seed: Optional[int] = None) -> Table:
    """Table of ``2 * num_column_pairs`` correlated numeric columns.

    Column names: ``c0, c1, ...``; consecutive pairs are correlated.
    """
    if num_column_pairs < 1:
        raise ValueError("need at least one column pair")
    rng = np.random.default_rng(seed)
    columns: Dict[str, np.ndarray] = {}
    for pair in range(num_column_pairs):
        a, b = correlated_columns(
            num_rows, correlation, seed=int(rng.integers(2 ** 31))
        )
        columns[f"c{2 * pair}"] = a
        columns[f"c{2 * pair + 1}"] = b
    return Table(name, columns)


def make_star_schema(fact_rows: int = 5000,
                     dimension_rows: Sequence[int] = (100, 50, 20),
                     skew: float = 1.1,
                     seed: Optional[int] = None) -> Catalog:
    """A fact table with skewed foreign keys into small dimensions.

    Tables: ``fact`` with columns ``fk0..fk{d-1}``, ``measure``; and
    ``dim0 .. dim{d-1}`` each with ``id`` and ``attr``.
    """
    if fact_rows < 1:
        raise ValueError("fact_rows must be positive")
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    fact_columns: Dict[str, np.ndarray] = {}
    for d, rows in enumerate(dimension_rows):
        if rows < 1:
            raise ValueError("dimension row counts must be positive")
        catalog.add_table(Table(
            f"dim{d}",
            {
                "id": np.arange(rows),
                "attr": rng.normal(size=rows),
            },
        ))
        fact_columns[f"fk{d}"] = zipf_column(
            fact_rows, rows, skew=skew, seed=int(rng.integers(2 ** 31))
        )
    fact_columns["measure"] = rng.gamma(2.0, 10.0, size=fact_rows)
    catalog.add_table(Table("fact", fact_columns))
    return catalog


def true_range_cardinality(table: Table,
                           predicates: Dict[str, Tuple[float, float]]
                           ) -> int:
    """Exact count of rows satisfying all range predicates.

    ``predicates`` maps column name to an inclusive (low, high) range.
    This is the label generator for learned cardinality estimation.
    """
    mask = np.ones(table.num_rows, dtype=bool)
    for column, (low, high) in predicates.items():
        values = table.column(column)
        mask &= (values >= low) & (values <= high)
    return int(mask.sum())


def make_tpch_like_schema(scale: float = 0.01,
                          seed: Optional[int] = None) -> Catalog:
    """A miniature TPC-H-flavoured schema with referentially intact
    foreign keys.

    Tables (row counts at scale 1.0 in parentheses, scaled down
    linearly): ``region`` (5), ``nation`` (25), ``customer`` (15k),
    ``orders`` (150k), ``lineitem`` (~600k), ``part`` (20k),
    ``supplier`` (1k). The canonical 5-way chain join
    region-nation-customer-orders-lineitem exercises the optimizer the
    way TPC-H Q5-style queries do.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed)

    def rows(base: int, minimum: int = 2) -> int:
        return max(minimum, int(base * scale))

    n_region = 5
    n_nation = 25
    n_customer = rows(150_000)
    n_orders = rows(1_500_000)
    n_lineitem = rows(6_000_000)
    n_part = rows(200_000)
    n_supplier = rows(10_000)

    catalog = Catalog()
    catalog.add_table(Table("region", {
        "r_regionkey": np.arange(n_region),
    }))
    catalog.add_table(Table("nation", {
        "n_nationkey": np.arange(n_nation),
        "n_regionkey": rng.integers(0, n_region, size=n_nation),
    }))
    catalog.add_table(Table("customer", {
        "c_custkey": np.arange(n_customer),
        "c_nationkey": rng.integers(0, n_nation, size=n_customer),
        "c_acctbal": rng.uniform(-1000, 10_000, size=n_customer),
    }))
    catalog.add_table(Table("orders", {
        "o_orderkey": np.arange(n_orders),
        "o_custkey": zipf_column(n_orders, n_customer, skew=1.05,
                                 seed=int(rng.integers(2 ** 31))),
        "o_totalprice": rng.gamma(2.0, 20_000.0, size=n_orders),
    }))
    catalog.add_table(Table("lineitem", {
        "l_orderkey": zipf_column(n_lineitem, n_orders, skew=1.02,
                                  seed=int(rng.integers(2 ** 31))),
        "l_partkey": rng.integers(0, n_part, size=n_lineitem),
        "l_suppkey": rng.integers(0, n_supplier, size=n_lineitem),
        "l_quantity": rng.integers(1, 51, size=n_lineitem),
    }))
    catalog.add_table(Table("part", {
        "p_partkey": np.arange(n_part),
        "p_retailprice": rng.uniform(900, 2000, size=n_part),
    }))
    catalog.add_table(Table("supplier", {
        "s_suppkey": np.arange(n_supplier),
        "s_nationkey": rng.integers(0, n_nation, size=n_supplier),
    }))
    return catalog


def tpch_chain_join_query(catalog: Catalog):
    """The canonical TPC-H-style 5-way chain join as a PhysicalQuery:
    region - nation - customer - orders - lineitem."""
    from .executor import EquiJoinPredicate, PhysicalQuery

    return PhysicalQuery(
        catalog=catalog,
        tables=["region", "nation", "customer", "orders", "lineitem"],
        predicates=[
            EquiJoinPredicate("nation", "n_regionkey",
                              "region", "r_regionkey"),
            EquiJoinPredicate("customer", "c_nationkey",
                              "nation", "n_nationkey"),
            EquiJoinPredicate("orders", "o_custkey",
                              "customer", "c_custkey"),
            EquiJoinPredicate("lineitem", "l_orderkey",
                              "orders", "o_orderkey"),
        ],
    )
