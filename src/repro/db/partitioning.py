"""Data partitioning (sharding) as a balanced min-cut QUBO.

Distributing tables (or fragments) across two nodes so that
co-accessed data stays together is weighted graph partitioning:
minimize the co-access weight cut by the partition while keeping the
two shards balanced. With spins ``s_i = +-1`` denoting the shard of
fragment i, the cut is ``sum_{ij} w_ij (1 - s_i s_j) / 2`` and balance
is ``(sum_i size_i s_i)^2`` — both natively quadratic, making this the
most annealer-shaped of the database problems. Baselines:
Kernighan–Lin (networkx) and exact enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..annealing.ising import IsingModel
from ..compile import (
    CompiledProblem,
    ProblemBuilder,
    SolverConfig,
    validate_penalty_scale,
)
from ..compile import solve as dispatch_solve


@dataclass
class PartitioningProblem:
    """Fragments with sizes plus a weighted co-access graph.

    ``weights[(i, j)]`` is the co-access frequency (e.g. how often a
    join touches both fragments); cutting it costs that much network
    traffic.
    """

    sizes: List[float]
    weights: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.sizes) < 2:
            raise ValueError("need at least two fragments")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        normalized: Dict[Tuple[int, int], float] = {}
        for (i, j), value in self.weights.items():
            if not 0 <= i < len(self.sizes) or not 0 <= j < len(self.sizes):
                raise ValueError("weight index out of range")
            if i == j:
                raise ValueError("weights link distinct fragments")
            if value < 0:
                raise ValueError("weights must be non-negative")
            key = (min(i, j), max(i, j))
            normalized[key] = normalized.get(key, 0.0) + float(value)
        self.weights = normalized

    @property
    def num_fragments(self) -> int:
        return len(self.sizes)

    def cut_weight(self, assignment: Sequence[int]) -> float:
        """Total co-access weight crossing the partition.

        ``assignment`` holds shard ids 0/1 per fragment.
        """
        self._check_assignment(assignment)
        return float(sum(
            w for (i, j), w in self.weights.items()
            if assignment[i] != assignment[j]
        ))

    def imbalance(self, assignment: Sequence[int]) -> float:
        """Absolute size difference between the two shards."""
        self._check_assignment(assignment)
        shard0 = sum(s for s, a in zip(self.sizes, assignment) if a == 0)
        shard1 = sum(self.sizes) - shard0
        return abs(shard0 - shard1)

    def _check_assignment(self, assignment: Sequence[int]) -> None:
        if len(assignment) != self.num_fragments:
            raise ValueError("assignment must cover every fragment")
        if any(a not in (0, 1) for a in assignment):
            raise ValueError("assignment must be binary shard ids")

    def to_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_fragments))
        for (i, j), w in self.weights.items():
            graph.add_edge(i, j, weight=w)
        return graph

    @classmethod
    def random(cls, num_fragments: int, edge_probability: float = 0.4,
               seed: Optional[int] = None) -> "PartitioningProblem":
        """Random co-access graph with log-uniform sizes."""
        if num_fragments < 2:
            raise ValueError("need at least two fragments")
        if not 0 < edge_probability <= 1:
            raise ValueError("edge_probability must be in (0, 1]")
        rng = np.random.default_rng(seed)
        sizes = list(np.exp(rng.uniform(0, 3, size=num_fragments)))
        weights: Dict[Tuple[int, int], float] = {}
        for i in range(num_fragments):
            for j in range(i + 1, num_fragments):
                if rng.random() < edge_probability:
                    weights[(i, j)] = float(rng.uniform(0.5, 10.0))
        return cls(sizes=sizes, weights=weights)


class PartitioningIsing:
    """Ising compiler: spins are shards, no auxiliary variables needed.

    Energy = cut(s) + balance_weight * (sum size_i s_i)^2 / scale,
    dropping constants. Expanding:

    * cut: ``sum w_ij (1 - s_i s_j) / 2`` -> coupling ``-w_ij / 2``,
    * balance: couplings ``+ balance_weight * size_i size_j`` (the
      squared diagonal terms are constants).
    """

    def __init__(self, problem: PartitioningProblem,
                 balance_weight: Optional[float] = None,
                 penalty_scale: float = 1.0):
        self.problem = problem
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        if balance_weight is None:
            # Scale so a one-fragment imbalance costs about as much as
            # a typical co-access edge.
            total_weight = sum(problem.weights.values())
            mean_edge = (total_weight / len(problem.weights)
                         if problem.weights else 1.0)
            mean_size_sq = float(np.mean(np.square(problem.sizes)))
            balance_weight = 0.5 * mean_edge / max(mean_size_sq, 1e-12)
        if balance_weight < 0:
            raise ValueError("balance_weight must be non-negative")
        self.balance_weight = float(balance_weight) * self.penalty_scale
        self._compiled: Optional[CompiledProblem] = None

    def compile(self) -> CompiledProblem:
        """Lower the formulation to the shared IR (cached)."""
        if self._compiled is not None:
            return self._compiled
        problem = self.problem
        builder = ProblemBuilder("partitioning",
                                 penalty_scale=self.penalty_scale,
                                 mode="ising")
        for i in range(problem.num_fragments):
            builder.add_variable("shard", i)
        for (a, b), w in problem.weights.items():
            builder.add_coupling(a, b, -w / 2.0)
        if self.balance_weight:
            for a in range(problem.num_fragments):
                for b in range(a + 1, problem.num_fragments):
                    builder.add_coupling(a, b, (
                        2.0 * self.balance_weight
                        * problem.sizes[a] * problem.sizes[b]
                    ))

        def score(assignment: Sequence[int]) -> float:
            return _score(problem, assignment, self.balance_weight)

        def feasible(assignment: Sequence[int]) -> bool:
            return (len(assignment) == problem.num_fragments
                    and all(a in (0, 1) for a in assignment))

        self._compiled = builder.finish(
            decode=self.decode,
            score=score,
            feasible=feasible,
            metadata={"balance_weight": self.balance_weight,
                      "num_fragments": problem.num_fragments},
        )
        return self._compiled

    def build(self) -> IsingModel:
        return self.compile().model

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Solver bits (0/1) are directly shard ids; fix the gauge so
        fragment 0 is always on shard 0 (the Z2 symmetry)."""
        bits = [int(b) for b in bits]
        if len(bits) != self.problem.num_fragments:
            raise ValueError("wrong number of bits")
        if bits[0] == 1:
            bits = [1 - b for b in bits]
        return bits


def partition_exact(problem: PartitioningProblem,
                    balance_weight: Optional[float] = None
                    ) -> Tuple[List[int], float]:
    """Best assignment by enumeration of 2^(n-1) gauge-fixed splits."""
    compiler = PartitioningIsing(problem, balance_weight=balance_weight)
    best_assignment: List[int] = []
    best_score = math.inf
    n = problem.num_fragments
    for mask in range(2 ** (n - 1)):
        assignment = [0] + [(mask >> k) & 1 for k in range(n - 1)]
        score = _score(problem, assignment, compiler.balance_weight)
        if score < best_score:
            best_score = score
            best_assignment = assignment
    return best_assignment, problem.cut_weight(best_assignment)


def partition_kernighan_lin(problem: PartitioningProblem,
                            seed: Optional[int] = None) -> List[int]:
    """Kernighan–Lin bisection (networkx) — the classical baseline.

    KL enforces equal *cardinality* halves, ignoring fragment sizes;
    its imbalance on heterogeneous fragments is part of the story.
    """
    graph = problem.to_graph()
    left, right = nx.algorithms.community.kernighan_lin_bisection(
        graph, weight="weight", seed=seed
    )
    assignment = [0] * problem.num_fragments
    for node in right:
        assignment[node] = 1
    if assignment[0] == 1:
        assignment = [1 - a for a in assignment]
    return assignment


#: Default dispatch configuration of :func:`partition_annealing`.
DEFAULT_SOLVER_CONFIG = SolverConfig(num_sweeps=500, num_reads=25, seed=0)


def partition_annealing(problem: PartitioningProblem, solver=None,
                        balance_weight: Optional[float] = None,
                        penalty_scale: float = 1.0,
                        config: Optional[SolverConfig] = None
                        ) -> List[int]:
    """Compile to Ising, dispatch a solver, decode the best read.

    ``solver`` is a registry name or solver instance; ``None`` means
    simulated annealing. Registry names with no explicit ``config``
    run at the deterministic :data:`DEFAULT_SOLVER_CONFIG`.
    """
    compiled = PartitioningIsing(
        problem, balance_weight=balance_weight,
        penalty_scale=penalty_scale
    ).compile()
    if solver is None:
        solver = "sa"
    if isinstance(solver, str) and config is None:
        config = DEFAULT_SOLVER_CONFIG
    return dispatch_solve(compiled, solver=solver, config=config).solution


def _score(problem: PartitioningProblem, assignment: Sequence[int],
           balance_weight: float) -> float:
    return (problem.cut_weight(assignment)
            + balance_weight * problem.imbalance(assignment) ** 2)
