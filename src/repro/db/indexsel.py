"""Index selection under a storage budget as a QUBO.

The classical problem: choose a subset of candidate indexes maximizing
workload benefit subject to a storage budget, where benefits interact
(two indexes covering the same query are partially redundant). The
QUBO encodes

    minimize  -sum_i benefit_i x_i + sum_{i<j} overlap_ij x_i x_j
              + A * (sum_i size_i x_i + slack - budget)^2

with the inequality turned into an equality through binary slack
variables — the standard knapsack-to-QUBO trick the tutorial covers.
Experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..annealing.qubo import QUBO
from ..compile import (
    CompiledProblem,
    ProblemBuilder,
    SolverConfig,
    analytic_penalty_weight,
    binary_slack_coefficients,
    check_bits,
    validate_penalty_scale,
)
from ..compile import solve as dispatch_solve


@dataclass
class IndexSelectionProblem:
    """Candidate indexes with sizes, benefits and pairwise overlaps.

    ``sizes`` and ``benefits`` are per-candidate; ``overlaps`` maps
    (i, j) with i < j to the benefit double-counted when both are
    chosen (subtracted from the sum of individual benefits). All sizes
    and the budget are positive integers, keeping the slack encoding
    exact.
    """

    sizes: List[int]
    benefits: List[float]
    overlaps: Dict[Tuple[int, int], float] = field(default_factory=dict)
    budget: int = 0

    def __post_init__(self):
        if len(self.sizes) != len(self.benefits):
            raise ValueError("sizes and benefits must align")
        if not self.sizes:
            raise ValueError("need at least one candidate index")
        if any(s < 1 for s in self.sizes):
            raise ValueError("sizes must be positive integers")
        if any(b < 0 for b in self.benefits):
            raise ValueError("benefits must be non-negative")
        if self.budget < 1:
            raise ValueError("budget must be a positive integer")
        normalized: Dict[Tuple[int, int], float] = {}
        for (i, j), value in self.overlaps.items():
            if not 0 <= i < len(self.sizes) or not 0 <= j < len(self.sizes):
                raise ValueError("overlap index out of range")
            if i == j:
                raise ValueError("overlaps link distinct indexes")
            if value < 0:
                raise ValueError("overlaps must be non-negative")
            key = (min(i, j), max(i, j))
            normalized[key] = normalized.get(key, 0.0) + float(value)
        self.overlaps = normalized

    @property
    def num_candidates(self) -> int:
        return len(self.sizes)

    def total_size(self, selection: Sequence[int]) -> int:
        return int(sum(self.sizes[i] for i in selection))

    def total_benefit(self, selection: Sequence[int]) -> float:
        """Net benefit of a set of candidate indexes (overlap-adjusted)."""
        chosen = sorted(set(selection))
        benefit = sum(self.benefits[i] for i in chosen)
        for a_pos, i in enumerate(chosen):
            for j in chosen[a_pos + 1:]:
                benefit -= self.overlaps.get((i, j), 0.0)
        return float(benefit)

    def is_feasible(self, selection: Sequence[int]) -> bool:
        return self.total_size(selection) <= self.budget

    @classmethod
    def random(cls, num_candidates: int, budget_fraction: float = 0.4,
               overlap_probability: float = 0.25,
               seed: Optional[int] = None) -> "IndexSelectionProblem":
        """Random instance; budget is a fraction of the total size."""
        if num_candidates < 2:
            raise ValueError("need at least two candidates")
        if not 0 < budget_fraction <= 1:
            raise ValueError("budget_fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        sizes = [int(rng.integers(1, 20)) for _ in range(num_candidates)]
        benefits = [float(rng.uniform(1.0, 50.0))
                    for _ in range(num_candidates)]
        overlaps: Dict[Tuple[int, int], float] = {}
        for i in range(num_candidates):
            for j in range(i + 1, num_candidates):
                if rng.random() < overlap_probability:
                    ceiling = 0.8 * min(benefits[i], benefits[j])
                    overlaps[(i, j)] = float(rng.uniform(0.0, ceiling))
        budget = max(1, int(budget_fraction * sum(sizes)))
        return cls(sizes=sizes, benefits=benefits, overlaps=overlaps,
                   budget=budget)


class IndexSelectionQUBO:
    """QUBO compiler with binary slack for the storage inequality."""

    def __init__(self, problem: IndexSelectionProblem,
                 penalty_scale: float = 1.0):
        self.problem = problem
        self.penalty_scale = validate_penalty_scale(penalty_scale)
        self.num_index_vars = problem.num_candidates
        self.num_slack_vars = max(1, problem.budget.bit_length())
        self.num_variables = self.num_index_vars + self.num_slack_vars
        self._compiled: Optional[CompiledProblem] = None

    def slack_coefficients(self) -> List[int]:
        """Binary expansion weights covering exactly [0, budget]."""
        return binary_slack_coefficients(self.problem.budget)

    def penalty_weight(self) -> float:
        """Exceeds the largest possible benefit swing of one index."""
        best = max(self.problem.benefits)
        return analytic_penalty_weight(best, self.penalty_scale)

    def compile(self) -> CompiledProblem:
        """Lower the formulation to the shared IR (cached)."""
        if self._compiled is not None:
            return self._compiled
        problem = self.problem
        builder = ProblemBuilder("index_selection",
                                 penalty_scale=self.penalty_scale)
        for i in range(self.num_index_vars):
            builder.add_variable("index", i)
        for i, benefit in enumerate(problem.benefits):
            builder.add_linear(i, -benefit)
        for (i, j), value in problem.overlaps.items():
            builder.add_quadratic(i, j, value)

        # Penalty A * (sum_i s_i x_i + sum_k w_k z_k - budget)^2, the
        # inequality turned into an equality via binary slack.
        weight = self.penalty_weight()
        builder.linear_leq(
            list(enumerate(problem.sizes)), problem.budget, weight
        )

        def score(selection: List[int]) -> float:
            return -problem.total_benefit(selection)

        self._compiled = builder.finish(
            decode=self.decode,
            score=score,
            feasible=problem.is_feasible,
            metadata={"penalty_weight": weight,
                      "budget": problem.budget,
                      "num_slack_vars": self.num_slack_vars},
        )
        return self._compiled

    def build(self) -> QUBO:
        return self.compile().model

    def decode(self, bits: Sequence[int]) -> List[int]:
        """Bits -> selected index list with two repair passes.

        First infeasible selections shed their worst benefit/size
        index until the budget holds; then leftover budget is filled
        greedily by marginal benefit (the annealer often leaves slack
        capacity because the slack bits froze early).
        """
        bits = check_bits(bits, self.num_variables)
        selection = [i for i in range(self.num_index_vars) if bits[i] == 1]
        while selection and not self.problem.is_feasible(selection):
            worst = min(
                selection,
                key=lambda i: self.problem.benefits[i] / self.problem.sizes[i],
            )
            selection.remove(worst)
        return self._complete_greedily(selection)

    def _complete_greedily(self, selection: List[int]) -> List[int]:
        remaining = [
            i for i in range(self.num_index_vars) if i not in selection
        ]
        while True:
            current = self.problem.total_benefit(selection)
            best_gain = 0.0
            best_index: Optional[int] = None
            for i in remaining:
                if not self.problem.is_feasible(selection + [i]):
                    continue
                gain = self.problem.total_benefit(selection + [i]) - current
                if gain > best_gain:
                    best_gain = gain
                    best_index = i
            if best_index is None:
                return selection
            selection = selection + [best_index]
            remaining.remove(best_index)


def solve_index_selection_exact(problem: IndexSelectionProblem
                                ) -> Tuple[List[int], float]:
    """Optimal selection by subset enumeration (n <= ~20)."""
    n = problem.num_candidates
    if n > 22:
        raise ValueError("exact enumeration limited to 22 candidates")
    best_selection: List[int] = []
    best_benefit = 0.0
    for mask in range(1 << n):
        selection = [i for i in range(n) if mask & (1 << i)]
        if not problem.is_feasible(selection):
            continue
        benefit = problem.total_benefit(selection)
        if benefit > best_benefit:
            best_benefit = benefit
            best_selection = selection
    return best_selection, best_benefit


def solve_index_selection_greedy(problem: IndexSelectionProblem
                                 ) -> Tuple[List[int], float]:
    """Marginal-benefit-per-size greedy (the classical advisor loop)."""
    selection: List[int] = []
    remaining = set(range(problem.num_candidates))
    budget_left = problem.budget
    while True:
        best_index: Optional[int] = None
        best_ratio = 0.0
        current = problem.total_benefit(selection)
        for i in sorted(remaining):
            if problem.sizes[i] > budget_left:
                continue
            marginal = problem.total_benefit(selection + [i]) - current
            ratio = marginal / problem.sizes[i]
            if ratio > best_ratio:
                best_ratio = ratio
                best_index = i
        if best_index is None:
            break
        selection.append(best_index)
        remaining.discard(best_index)
        budget_left -= problem.sizes[best_index]
    return selection, problem.total_benefit(selection)


#: Default dispatch configuration of
#: :func:`solve_index_selection_annealing`.
DEFAULT_SOLVER_CONFIG = SolverConfig(num_sweeps=800, num_reads=40, seed=0)


def solve_index_selection_annealing(problem: IndexSelectionProblem,
                                    solver=None,
                                    penalty_scale: float = 1.0,
                                    config: Optional[SolverConfig] = None
                                    ) -> Tuple[List[int], float]:
    """Compile to QUBO, dispatch a solver, decode the best read.

    ``solver`` is a registry name or solver instance; ``None`` means
    simulated annealing. Registry names with no explicit ``config``
    run at the deterministic :data:`DEFAULT_SOLVER_CONFIG`.
    """
    compiled = IndexSelectionQUBO(
        problem, penalty_scale=penalty_scale
    ).compile()
    if solver is None:
        solver = "sa"
    if isinstance(solver, str) and config is None:
        config = DEFAULT_SOLVER_CONFIG
    result = dispatch_solve(compiled, solver=solver, config=config)
    benefit = problem.total_benefit(result.solution)
    return result.solution, max(benefit, 0.0)
